// Package predicate implements the condition language of ChARLES: conjunctive
// predicates over table attributes. A condition is the "why" half of a
// conditional transformation — it identifies the data partition a
// transformation applies to, e.g. `edu = MS ∧ exp < 3`.
//
// Two evaluation paths exist: the row-at-a-time reference path (Atom.Eval,
// Predicate.Mask) and a compiled columnar path (Compile, CompileAtom,
// Cache) that materializes each atom as a Bitset once and reduces
// conjunctions to word-wise ANDs — the engine's candidate-evaluation hot
// path. Differential tests pin the two paths to each other.
package predicate

import (
	"bytes"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"charles/internal/table"
)

// Op is a comparison operator.
type Op int

// Supported operators. Numeric attributes use Lt/Ge (the decision-tree
// induction only produces half-open splits); categorical attributes use
// Eq/Ne/In.
const (
	Eq Op = iota // attr = value (categorical)
	Ne           // attr ≠ value (categorical)
	Lt           // attr < threshold (numeric)
	Ge           // attr ≥ threshold (numeric)
	In           // attr ∈ {set} (categorical)
)

// String returns the operator's display form.
func (o Op) String() string {
	switch o {
	case Eq:
		return "="
	case Ne:
		return "≠"
	case Lt:
		return "<"
	case Ge:
		return "≥"
	case In:
		return "∈"
	default:
		return fmt.Sprintf("Op(%d)", int(o))
	}
}

// Atom is a single comparison against one attribute.
type Atom struct {
	Attr    string
	Op      Op
	Num     float64  // threshold for Lt/Ge
	Str     string   // value for Eq/Ne
	Set     []string // values for In (sorted)
	Numeric bool     // true when the atom compares numerically
}

// NumAtom builds a numeric threshold atom.
func NumAtom(attr string, op Op, threshold float64) Atom {
	return Atom{Attr: attr, Op: op, Num: threshold, Numeric: true}
}

// StrAtom builds a categorical equality/inequality atom.
func StrAtom(attr string, op Op, value string) Atom {
	return Atom{Attr: attr, Op: op, Str: value}
}

// SetAtom builds a set-membership atom.
func SetAtom(attr string, values []string) Atom {
	s := append([]string(nil), values...)
	sort.Strings(s)
	return Atom{Attr: attr, Op: In, Set: s}
}

// Eval evaluates the atom against row r of t. Rows with nulls in the tested
// attribute never match.
func (a Atom) Eval(t *table.Table, r int) (bool, error) {
	col, err := t.Column(a.Attr)
	if err != nil {
		return false, err
	}
	if col.IsNull(r) {
		return false, nil
	}
	if a.Numeric {
		x := col.Float(r)
		switch a.Op {
		case Lt:
			return x < a.Num, nil
		case Ge:
			return x >= a.Num, nil
		case Eq:
			return x == a.Num, nil
		case Ne:
			return x != a.Num, nil
		default:
			return false, fmt.Errorf("predicate: numeric atom with operator %s", a.Op)
		}
	}
	s := col.Str(r)
	switch a.Op {
	case Eq:
		return s == a.Str, nil
	case Ne:
		return s != a.Str, nil
	case In:
		i := sort.SearchStrings(a.Set, s)
		return i < len(a.Set) && a.Set[i] == s, nil
	default:
		return false, fmt.Errorf("predicate: categorical atom with operator %s", a.Op)
	}
}

// String renders the atom, e.g. "edu = PhD" or "exp < 3".
func (a Atom) String() string {
	if a.Numeric {
		return fmt.Sprintf("%s %s %s", a.Attr, a.Op, formatNum(a.Num))
	}
	if a.Op == In {
		return fmt.Sprintf("%s ∈ {%s}", a.Attr, strings.Join(a.Set, ", "))
	}
	return fmt.Sprintf("%s %s %s", a.Attr, a.Op, a.Str)
}

func formatNum(x float64) string {
	if x == float64(int64(x)) && x < 1e15 && x > -1e15 {
		return strconv.FormatInt(int64(x), 10)
	}
	return strconv.FormatFloat(x, 'g', 6, 64)
}

// key is a canonical form used for fingerprinting, dedup, and the compiled
// atom-bitmap cache. Built with strconv appends rather than Sprintf — it is
// called for every atom of every candidate summary — but the output is
// byte-identical to the historical Sprintf forms.
func (a Atom) key() string {
	return string(a.appendKey(make([]byte, 0, len(a.Attr)+24)))
}

// appendKey appends the canonical form to b. Split out from key so
// comparisons (atomCompare) can run on stack buffers without allocating.
func (a Atom) appendKey(b []byte) []byte {
	b = append(b, a.Attr...)
	b = append(b, '|')
	switch {
	case a.Numeric: // "%s|%d|%.12g"
		b = strconv.AppendInt(b, int64(a.Op), 10)
		b = append(b, '|')
		b = strconv.AppendFloat(b, a.Num, 'g', 12, 64)
	case a.Op == In: // "%s|in|%s"
		b = append(b, "in|"...)
		for i, s := range a.Set {
			if i > 0 {
				b = append(b, ',')
			}
			b = append(b, s...)
		}
	default: // "%s|%d|%s"
		b = strconv.AppendInt(b, int64(a.Op), 10)
		b = append(b, '|')
		b = append(b, a.Str...)
	}
	return b
}

// atomCompare orders atoms by their canonical keys without materializing
// the key strings (stack buffers; the canonical byte comparison).
func atomCompare(a, b Atom) int {
	var ab, bb [48]byte
	return bytes.Compare(a.appendKey(ab[:0]), b.appendKey(bb[:0]))
}

// Predicate is a conjunction of atoms. The empty predicate is TRUE (it
// matches every row) — used for global, unconditional transformations.
type Predicate struct {
	Atoms []Atom
}

// True returns the always-true predicate.
func True() Predicate { return Predicate{} }

// And returns a predicate extended with an extra atom (receiver unchanged).
func (p Predicate) And(a Atom) Predicate {
	atoms := make([]Atom, 0, len(p.Atoms)+1)
	atoms = append(atoms, p.Atoms...)
	atoms = append(atoms, a)
	return Predicate{Atoms: atoms}
}

// IsTrue reports whether the predicate matches all rows trivially.
func (p Predicate) IsTrue() bool { return len(p.Atoms) == 0 }

// Eval evaluates the conjunction against row r.
func (p Predicate) Eval(t *table.Table, r int) (bool, error) {
	for _, a := range p.Atoms {
		ok, err := a.Eval(t, r)
		if err != nil {
			return false, err
		}
		if !ok {
			return false, nil
		}
	}
	return true, nil
}

// Mask evaluates the predicate over all rows of t.
func (p Predicate) Mask(t *table.Table) ([]bool, error) {
	out := make([]bool, t.NumRows())
	for r := range out {
		ok, err := p.Eval(t, r)
		if err != nil {
			return nil, err
		}
		out[r] = ok
	}
	return out, nil
}

// Rows returns the indices of matching rows.
func (p Predicate) Rows(t *table.Table) ([]int, error) {
	var rows []int
	for r := 0; r < t.NumRows(); r++ {
		ok, err := p.Eval(t, r)
		if err != nil {
			return nil, err
		}
		if ok {
			rows = append(rows, r)
		}
	}
	return rows, nil
}

// Coverage returns the fraction of rows of t that match (0 for empty t).
func (p Predicate) Coverage(t *table.Table) (float64, error) {
	if t.NumRows() == 0 {
		return 0, nil
	}
	rows, err := p.Rows(t)
	if err != nil {
		return 0, err
	}
	return float64(len(rows)) / float64(t.NumRows()), nil
}

// Complexity counts the number of atoms (the paper's "fewer descriptors"
// interpretability criterion).
func (p Predicate) Complexity() int { return len(p.Atoms) }

// Attrs returns the distinct attributes referenced, sorted.
func (p Predicate) Attrs() []string {
	seen := map[string]bool{}
	for _, a := range p.Atoms {
		seen[a.Attr] = true
	}
	out := make([]string, 0, len(seen))
	for s := range seen {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// Normalize merges redundant atoms: multiple Lt atoms on one attribute keep
// only the tightest bound, likewise Ge; duplicate categorical atoms collapse;
// Ne atoms implied by an Eq atom on the same attribute are dropped
// (edu = MS subsumes edu ≠ PhD). Contradictory categorical equalities are
// preserved (the predicate simply matches nothing). The result is sorted
// canonically.
func (p Predicate) Normalize() Predicate {
	// Fast path: the engine repeatedly normalizes predicates that already
	// are (tree leaves are emitted normalized, then re-normalized by the
	// simplifier and every Fingerprint). Detecting that costs a few stack
	// comparisons and no allocations.
	if p.isNormalized() {
		return p
	}
	// The maps are allocated lazily: Normalize runs once per induced leaf
	// predicate, and most predicates have no numeric bounds to merge.
	var lt, ge map[string]float64
	var eqAttr map[string]string
	for _, a := range p.Atoms {
		if !a.Numeric && a.Op == Eq {
			if eqAttr == nil {
				eqAttr = map[string]string{}
			}
			eqAttr[a.Attr] = a.Str
		}
	}
	var rest []Atom
	var seen map[string]bool
	for _, a := range p.Atoms {
		switch {
		case a.Numeric && a.Op == Lt:
			if cur, ok := lt[a.Attr]; !ok || a.Num < cur {
				if lt == nil {
					lt = map[string]float64{}
				}
				lt[a.Attr] = a.Num
			}
		case a.Numeric && a.Op == Ge:
			if cur, ok := ge[a.Attr]; !ok || a.Num > cur {
				if ge == nil {
					ge = map[string]float64{}
				}
				ge[a.Attr] = a.Num
			}
		default:
			if !a.Numeric && a.Op == Ne {
				if v, ok := eqAttr[a.Attr]; ok && v != a.Str {
					continue // implied by the equality on this attribute
				}
			}
			k := a.key()
			if !seen[k] {
				if seen == nil {
					seen = map[string]bool{}
				}
				seen[k] = true
				rest = append(rest, a)
			}
		}
	}
	var atoms []Atom
	atoms = append(atoms, rest...)
	for attr, v := range ge {
		atoms = append(atoms, NumAtom(attr, Ge, v))
	}
	for attr, v := range lt {
		atoms = append(atoms, NumAtom(attr, Lt, v))
	}
	// Insertion sort with the allocation-free comparator: condition
	// predicates are bounded at a handful of atoms.
	for i := 1; i < len(atoms); i++ {
		for j := i; j > 0 && atomCompare(atoms[j-1], atoms[j]) > 0; j-- {
			atoms[j-1], atoms[j] = atoms[j], atoms[j-1]
		}
	}
	return Predicate{Atoms: atoms}
}

// isNormalized reports whether Normalize would return p unchanged: atoms
// strictly sorted by canonical key (hence no duplicates), at most one bound
// per attribute and direction, and no ≠ atom implied by an equality.
func (p Predicate) isNormalized() bool {
	for i := 1; i < len(p.Atoms); i++ {
		a, b := p.Atoms[i-1], p.Atoms[i]
		if atomCompare(a, b) >= 0 {
			return false
		}
		// Same-attribute bounds sort adjacently (keys share the attr|op
		// prefix), so a pair needing a merge shows up here.
		if a.Numeric && b.Numeric && a.Op == b.Op && (a.Op == Lt || a.Op == Ge) && a.Attr == b.Attr {
			return false
		}
	}
	for _, a := range p.Atoms {
		if a.Numeric || a.Op != Ne {
			continue
		}
		for _, b := range p.Atoms {
			if !b.Numeric && b.Op == Eq && b.Attr == a.Attr && b.Str != a.Str {
				return false // implied by the equality; Normalize drops it
			}
		}
	}
	return true
}

// String renders the conjunction, e.g. "edu = MS ∧ exp < 3"; TRUE when empty.
func (p Predicate) String() string {
	if p.IsTrue() {
		return "TRUE"
	}
	parts := make([]string, len(p.Atoms))
	for i, a := range p.Atoms {
		parts[i] = a.String()
	}
	return strings.Join(parts, " ∧ ")
}

// Fingerprint returns a canonical identity string (normalization applied),
// so semantically equal predicates compare equal.
func (p Predicate) Fingerprint() string {
	n := p.Normalize()
	keys := make([]string, len(n.Atoms))
	for i, a := range n.Atoms {
		keys[i] = a.key()
	}
	return strings.Join(keys, "&")
}

// Equal reports semantic equality via fingerprints.
func (p Predicate) Equal(o Predicate) bool { return p.Fingerprint() == o.Fingerprint() }
