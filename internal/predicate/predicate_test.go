package predicate

import (
	"strings"
	"testing"

	"charles/internal/table"
)

func sampleTable(t *testing.T) *table.Table {
	t.Helper()
	tbl := table.MustNew(table.Schema{
		{Name: "edu", Type: table.String},
		{Name: "exp", Type: table.Int},
		{Name: "pay", Type: table.Float},
	})
	tbl.MustAppendRow(table.S("PhD"), table.I(2), table.F(230000))
	tbl.MustAppendRow(table.S("MS"), table.I(5), table.F(160000))
	tbl.MustAppendRow(table.S("MS"), table.I(1), table.F(130000))
	tbl.MustAppendRow(table.S("BS"), table.I(3), table.F(110000))
	tbl.MustAppendRow(table.Null(table.String), table.Null(table.Int), table.F(90000))
	return tbl
}

func mustMask(t *testing.T, p Predicate, tbl *table.Table) []bool {
	t.Helper()
	m, err := p.Mask(tbl)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestAtomOps(t *testing.T) {
	tbl := sampleTable(t)
	cases := []struct {
		atom Atom
		want []bool
	}{
		{StrAtom("edu", Eq, "MS"), []bool{false, true, true, false, false}},
		{StrAtom("edu", Ne, "MS"), []bool{true, false, false, true, false}},
		{NumAtom("exp", Lt, 3), []bool{true, false, true, false, false}},
		{NumAtom("exp", Ge, 3), []bool{false, true, false, true, false}},
		{SetAtom("edu", []string{"PhD", "BS"}), []bool{true, false, false, true, false}},
		{NumAtom("pay", Eq, 160000), []bool{false, true, false, false, false}},
		{NumAtom("pay", Ne, 160000), []bool{true, false, true, true, true}},
	}
	for _, c := range cases {
		got := mustMask(t, Predicate{Atoms: []Atom{c.atom}}, tbl)
		for i := range c.want {
			if got[i] != c.want[i] {
				t.Errorf("%s: row %d = %v, want %v", c.atom, i, got[i], c.want[i])
			}
		}
	}
}

func TestNullsNeverMatch(t *testing.T) {
	tbl := sampleTable(t)
	// Row 4 has null edu and exp; neither a positive nor a negative atom
	// may match it.
	for _, a := range []Atom{
		StrAtom("edu", Eq, "MS"), StrAtom("edu", Ne, "MS"),
		NumAtom("exp", Lt, 100), NumAtom("exp", Ge, -100),
	} {
		ok, err := a.Eval(tbl, 4)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			t.Errorf("%s matched a null row", a)
		}
	}
}

func TestAtomUnknownAttr(t *testing.T) {
	tbl := sampleTable(t)
	if _, err := StrAtom("ghost", Eq, "x").Eval(tbl, 0); err == nil {
		t.Error("unknown attribute accepted")
	}
}

func TestConjunction(t *testing.T) {
	tbl := sampleTable(t)
	p := True().And(StrAtom("edu", Eq, "MS")).And(NumAtom("exp", Ge, 3))
	got := mustMask(t, p, tbl)
	want := []bool{false, true, false, false, false}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("row %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestTruePredicate(t *testing.T) {
	tbl := sampleTable(t)
	p := True()
	if !p.IsTrue() {
		t.Error("True() not IsTrue")
	}
	cov, err := p.Coverage(tbl)
	if err != nil || cov != 1 {
		t.Errorf("TRUE coverage = %v, %v", cov, err)
	}
	if p.String() != "TRUE" {
		t.Errorf("String = %q", p.String())
	}
}

func TestAndDoesNotMutateReceiver(t *testing.T) {
	p := True().And(StrAtom("edu", Eq, "MS"))
	q := p.And(NumAtom("exp", Lt, 3))
	r := p.And(NumAtom("exp", Ge, 3))
	if len(p.Atoms) != 1 || len(q.Atoms) != 2 || len(r.Atoms) != 2 {
		t.Error("And mutated its receiver")
	}
	if q.Atoms[1].Op == r.Atoms[1].Op {
		t.Error("sibling predicates share atom storage")
	}
}

func TestCoverageAndRows(t *testing.T) {
	tbl := sampleTable(t)
	p := Predicate{Atoms: []Atom{StrAtom("edu", Eq, "MS")}}
	rows, err := p.Rows(tbl)
	if err != nil || len(rows) != 2 || rows[0] != 1 || rows[1] != 2 {
		t.Errorf("Rows = %v, %v", rows, err)
	}
	cov, err := p.Coverage(tbl)
	if err != nil || cov != 0.4 {
		t.Errorf("Coverage = %v, %v", cov, err)
	}
	empty := table.MustNew(tbl.Schema())
	cov, err = p.Coverage(empty)
	if err != nil || cov != 0 {
		t.Errorf("empty coverage = %v, %v", cov, err)
	}
}

func TestNormalizeTightensNumericBounds(t *testing.T) {
	p := Predicate{Atoms: []Atom{
		NumAtom("exp", Lt, 10),
		NumAtom("exp", Lt, 5),
		NumAtom("exp", Ge, 1),
		NumAtom("exp", Ge, 3),
	}}
	n := p.Normalize()
	if len(n.Atoms) != 2 {
		t.Fatalf("normalized atoms = %v", n.Atoms)
	}
	var lt, ge float64
	for _, a := range n.Atoms {
		switch a.Op {
		case Lt:
			lt = a.Num
		case Ge:
			ge = a.Num
		}
	}
	if lt != 5 || ge != 3 {
		t.Errorf("bounds = [%v, %v), want [3, 5)", ge, lt)
	}
}

func TestNormalizeDropsImpliedNe(t *testing.T) {
	p := Predicate{Atoms: []Atom{
		StrAtom("edu", Ne, "BS"),
		StrAtom("edu", Ne, "PhD"),
		StrAtom("edu", Eq, "MS"),
	}}
	n := p.Normalize()
	if len(n.Atoms) != 1 || n.Atoms[0].Op != Eq {
		t.Errorf("normalized = %v", n)
	}
}

func TestNormalizeDropsDuplicates(t *testing.T) {
	a := StrAtom("edu", Eq, "MS")
	p := Predicate{Atoms: []Atom{a, a, a}}
	if n := p.Normalize(); len(n.Atoms) != 1 {
		t.Errorf("duplicates survived: %v", n)
	}
}

func TestFingerprintOrderInsensitive(t *testing.T) {
	p := Predicate{Atoms: []Atom{StrAtom("edu", Eq, "MS"), NumAtom("exp", Lt, 3)}}
	q := Predicate{Atoms: []Atom{NumAtom("exp", Lt, 3), StrAtom("edu", Eq, "MS")}}
	if p.Fingerprint() != q.Fingerprint() {
		t.Error("fingerprints differ for reordered atoms")
	}
	if !p.Equal(q) {
		t.Error("Equal should use fingerprints")
	}
	r := p.And(NumAtom("pay", Ge, 100))
	if p.Equal(r) {
		t.Error("different predicates compare equal")
	}
}

func TestNormalizeIdempotentAndMaskPreserving(t *testing.T) {
	tbl := sampleTable(t)
	preds := []Predicate{
		{Atoms: []Atom{StrAtom("edu", Ne, "BS"), StrAtom("edu", Ne, "PhD"), StrAtom("edu", Eq, "MS"), NumAtom("exp", Lt, 9), NumAtom("exp", Lt, 4)}},
		{Atoms: []Atom{NumAtom("pay", Ge, 100000), NumAtom("pay", Ge, 120000)}},
		True(),
	}
	for _, p := range preds {
		n := p.Normalize()
		nn := n.Normalize()
		if n.Fingerprint() != nn.Fingerprint() {
			t.Errorf("Normalize not idempotent for %s", p)
		}
		a := mustMask(t, p, tbl)
		b := mustMask(t, n, tbl)
		for i := range a {
			if a[i] != b[i] {
				t.Errorf("Normalize changed semantics of %s at row %d", p, i)
			}
		}
	}
}

func TestStringRendering(t *testing.T) {
	p := Predicate{Atoms: []Atom{StrAtom("edu", Eq, "MS"), NumAtom("exp", Lt, 3)}}
	s := p.String()
	if !strings.Contains(s, "edu = MS") || !strings.Contains(s, "exp < 3") || !strings.Contains(s, "∧") {
		t.Errorf("String = %q", s)
	}
	set := Predicate{Atoms: []Atom{SetAtom("edu", []string{"MS", "BS"})}}
	if !strings.Contains(set.String(), "edu ∈ {BS, MS}") {
		t.Errorf("set rendering = %q", set.String())
	}
	if got := NumAtom("pay", Ge, 130000).String(); got != "pay ≥ 130000" {
		t.Errorf("integer-valued float rendering = %q", got)
	}
}

func TestAttrs(t *testing.T) {
	p := Predicate{Atoms: []Atom{
		NumAtom("exp", Lt, 3), StrAtom("edu", Eq, "MS"), NumAtom("exp", Ge, 1),
	}}
	attrs := p.Attrs()
	if len(attrs) != 2 || attrs[0] != "edu" || attrs[1] != "exp" {
		t.Errorf("Attrs = %v", attrs)
	}
	if p.Complexity() != 3 {
		t.Errorf("Complexity = %d", p.Complexity())
	}
}

func TestEvalErrorPropagatesFromMask(t *testing.T) {
	tbl := sampleTable(t)
	p := Predicate{Atoms: []Atom{StrAtom("ghost", Eq, "x")}}
	if _, err := p.Mask(tbl); err == nil {
		t.Error("Mask with unknown attribute should fail")
	}
	if _, err := p.Rows(tbl); err == nil {
		t.Error("Rows with unknown attribute should fail")
	}
	if _, err := p.Coverage(tbl); err == nil {
		t.Error("Coverage with unknown attribute should fail")
	}
}
