package diff

import (
	"errors"
	"math"
	"reflect"
	"strings"
	"sync"
	"testing"

	"charles/internal/table"
)

func snapshotPair(t *testing.T) (*table.Table, *table.Table) {
	t.Helper()
	schema := table.Schema{
		{Name: "id", Type: table.Int},
		{Name: "pay", Type: table.Float},
		{Name: "dept", Type: table.String},
	}
	src := table.MustNew(schema)
	tgt := table.MustNew(schema)
	src.MustAppendRow(table.I(1), table.F(100), table.S("a"))
	src.MustAppendRow(table.I(2), table.F(200), table.S("b"))
	src.MustAppendRow(table.I(3), table.F(300), table.S("c"))
	// Target rows deliberately permuted; pay changed for ids 1 and 3, dept
	// changed for id 2.
	tgt.MustAppendRow(table.I(3), table.F(330), table.S("c"))
	tgt.MustAppendRow(table.I(1), table.F(110), table.S("a"))
	tgt.MustAppendRow(table.I(2), table.F(200), table.S("z"))
	if err := src.SetKey("id"); err != nil {
		t.Fatal(err)
	}
	return src, tgt
}

func TestAlignMatchesPermutedRows(t *testing.T) {
	src, tgt := snapshotPair(t)
	a, err := Align(src, tgt)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 0} // src row i ↔ tgt row want[i]
	for i, w := range want {
		if a.TgtRow[i] != w {
			t.Errorf("TgtRow[%d] = %d, want %d", i, a.TgtRow[i], w)
		}
	}
}

func TestAlignSchemaMismatch(t *testing.T) {
	src, _ := snapshotPair(t)
	other := table.MustNew(table.Schema{{Name: "id", Type: table.Int}})
	if _, err := Align(src, other); !errors.Is(err, ErrSchemaMismatch) {
		t.Errorf("err = %v, want ErrSchemaMismatch", err)
	}
}

func TestAlignNoKey(t *testing.T) {
	src, tgt := snapshotPair(t)
	noKey := src.Clone()
	if err := noKey.SetKey(); err != nil {
		t.Fatal(err)
	}
	if _, err := Align(noKey, tgt); !errors.Is(err, ErrNoKey) {
		t.Errorf("err = %v, want ErrNoKey", err)
	}
}

func TestAlignEntityMismatch(t *testing.T) {
	src, tgt := snapshotPair(t)
	shrunk := tgt.Gather([]int{0, 1})
	if _, err := Align(src, shrunk); !errors.Is(err, ErrEntityMismatch) {
		t.Errorf("row-count mismatch: err = %v", err)
	}
	// Same count, different entity.
	swapped := tgt.Clone()
	if err := swapped.MustColumn("id").Set(0, table.I(99)); err != nil {
		t.Fatal(err)
	}
	if _, err := Align(src, swapped); !errors.Is(err, ErrEntityMismatch) {
		t.Errorf("missing-key mismatch: err = %v", err)
	}
}

func TestDeltaAlignsValues(t *testing.T) {
	src, tgt := snapshotPair(t)
	a, err := Align(src, tgt)
	if err != nil {
		t.Fatal(err)
	}
	oldV, newV, err := a.Delta("pay")
	if err != nil {
		t.Fatal(err)
	}
	wantOld := []float64{100, 200, 300}
	wantNew := []float64{110, 200, 330}
	for i := range wantOld {
		if oldV[i] != wantOld[i] || newV[i] != wantNew[i] {
			t.Errorf("delta[%d] = (%v, %v), want (%v, %v)", i, oldV[i], newV[i], wantOld[i], wantNew[i])
		}
	}
}

func TestChangedMaskAndChanges(t *testing.T) {
	src, tgt := snapshotPair(t)
	a, err := Align(src, tgt)
	if err != nil {
		t.Fatal(err)
	}
	mask, err := a.ChangedMask("pay", 0)
	if err != nil {
		t.Fatal(err)
	}
	want := []bool{true, false, true}
	for i := range want {
		if mask[i] != want[i] {
			t.Errorf("mask[%d] = %v", i, mask[i])
		}
	}
	ch, err := a.Changes("pay", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(ch) != 2 || ch[0].SrcRow != 0 || ch[0].New.Float() != 110 {
		t.Errorf("changes = %+v", ch)
	}
	// Tolerance swallows small diffs.
	mask, err = a.ChangedMask("pay", 50)
	if err != nil {
		t.Fatal(err)
	}
	if mask[0] {
		t.Error("10-unit change should be under tolerance 50")
	}
}

func TestCategoricalChanges(t *testing.T) {
	src, tgt := snapshotPair(t)
	a, err := Align(src, tgt)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := a.Changes("dept", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(ch) != 1 || ch[0].Old.Str() != "b" || ch[0].New.Str() != "z" {
		t.Errorf("dept changes = %+v", ch)
	}
}

func TestAllChangesAndUpdateDistance(t *testing.T) {
	src, tgt := snapshotPair(t)
	a, err := Align(src, tgt)
	if err != nil {
		t.Fatal(err)
	}
	all, err := a.AllChanges(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 3 {
		t.Errorf("all changes = %d, want 3", len(all))
	}
	d, err := a.UpdateDistance(0)
	if err != nil || d != 3 {
		t.Errorf("update distance = %d, %v", d, err)
	}
}

func TestChangedAttrs(t *testing.T) {
	src, tgt := snapshotPair(t)
	a, err := Align(src, tgt)
	if err != nil {
		t.Fatal(err)
	}
	attrs, err := a.ChangedAttrs(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(attrs) != 2 || attrs[0] != "pay" || attrs[1] != "dept" {
		t.Errorf("changed attrs = %v", attrs)
	}
}

func TestNullTransitionsAreChanges(t *testing.T) {
	schema := table.Schema{{Name: "id", Type: table.Int}, {Name: "v", Type: table.Float}}
	src := table.MustNew(schema)
	tgt := table.MustNew(schema)
	src.MustAppendRow(table.I(1), table.Null(table.Float))
	src.MustAppendRow(table.I(2), table.F(5))
	tgt.MustAppendRow(table.I(1), table.F(5))
	tgt.MustAppendRow(table.I(2), table.Null(table.Float))
	if err := src.SetKey("id"); err != nil {
		t.Fatal(err)
	}
	a, err := Align(src, tgt)
	if err != nil {
		t.Fatal(err)
	}
	mask, err := a.ChangedMask("v", 0)
	if err != nil {
		t.Fatal(err)
	}
	if !mask[0] || !mask[1] {
		t.Errorf("null transitions not detected: %v", mask)
	}
}

func TestIdenticalSnapshotsNoChanges(t *testing.T) {
	src, _ := snapshotPair(t)
	a, err := Align(src, src.Clone())
	if err != nil {
		t.Fatal(err)
	}
	d, err := a.UpdateDistance(0)
	if err != nil || d != 0 {
		t.Errorf("identical snapshots update distance = %d, %v", d, err)
	}
	attrs, err := a.ChangedAttrs(0)
	if err != nil || len(attrs) != 0 {
		t.Errorf("changed attrs on identical = %v", attrs)
	}
}

func TestDeltaUnknownAttr(t *testing.T) {
	src, tgt := snapshotPair(t)
	a, err := Align(src, tgt)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := a.Delta("ghost"); err == nil {
		t.Error("unknown attr accepted")
	}
	if _, err := a.ChangedMask("ghost", 0); err == nil {
		t.Error("unknown attr accepted in ChangedMask")
	}
}

func TestAlignCommonToleratesInsertsAndDeletes(t *testing.T) {
	schema := table.Schema{{Name: "id", Type: table.Int}, {Name: "pay", Type: table.Float}}
	src := table.MustNew(schema)
	tgt := table.MustNew(schema)
	// src: 1,2,3 — tgt: 2,3,4 (1 deleted, 4 inserted; 2 changed).
	src.MustAppendRow(table.I(1), table.F(100))
	src.MustAppendRow(table.I(2), table.F(200))
	src.MustAppendRow(table.I(3), table.F(300))
	tgt.MustAppendRow(table.I(2), table.F(220))
	tgt.MustAppendRow(table.I(3), table.F(300))
	tgt.MustAppendRow(table.I(4), table.F(400))
	if err := src.SetKey("id"); err != nil {
		t.Fatal(err)
	}
	ca, err := AlignCommon(src, tgt)
	if err != nil {
		t.Fatal(err)
	}
	if len(ca.Deleted) != 1 || ca.Deleted[0] != 0 {
		t.Errorf("deleted = %v", ca.Deleted)
	}
	if len(ca.Inserted) != 1 || ca.Inserted[0] != 2 {
		t.Errorf("inserted = %v", ca.Inserted)
	}
	if ca.Source.NumRows() != 2 {
		t.Fatalf("common rows = %d", ca.Source.NumRows())
	}
	mask, err := ca.ChangedMask("pay", 0)
	if err != nil {
		t.Fatal(err)
	}
	changed := 0
	for _, c := range mask {
		if c {
			changed++
		}
	}
	if changed != 1 {
		t.Errorf("changed common rows = %d, want 1", changed)
	}
	// Strict Align must still reject this pair.
	if _, err := Align(src, tgt); err == nil {
		t.Error("strict alignment accepted insert/delete pair")
	}
}

func TestAlignCommonIdenticalSets(t *testing.T) {
	src, tgt := snapshotPair(t)
	ca, err := AlignCommon(src, tgt)
	if err != nil {
		t.Fatal(err)
	}
	if len(ca.Deleted) != 0 || len(ca.Inserted) != 0 {
		t.Errorf("no inserts/deletes expected: %v / %v", ca.Deleted, ca.Inserted)
	}
	if ca.Source.NumRows() != src.NumRows() {
		t.Errorf("common rows = %d", ca.Source.NumRows())
	}
}

func TestAlignCommonValidation(t *testing.T) {
	src, tgt := snapshotPair(t)
	other := table.MustNew(table.Schema{{Name: "id", Type: table.Int}})
	if _, err := AlignCommon(src, other); !errors.Is(err, ErrSchemaMismatch) {
		t.Errorf("schema mismatch: %v", err)
	}
	noKey := src.Clone()
	if err := noKey.SetKey(); err != nil {
		t.Fatal(err)
	}
	if _, err := AlignCommon(noKey, tgt); !errors.Is(err, ErrNoKey) {
		t.Errorf("no key: %v", err)
	}
}

// TestNaNTransitionsAreChanges pins the cellChanged NaN semantics: a
// transition into or out of NaN is a change (like null), NaN on both sides
// is not. The naive |x−y| > tol comparison is always false against NaN,
// which historically made such transitions invisible to ChangedMask,
// ChangedAttrs, and UpdateDistance.
func TestNaNTransitionsAreChanges(t *testing.T) {
	schema := table.Schema{{Name: "id", Type: table.Int}, {Name: "v", Type: table.Float}}
	src := table.MustNew(schema)
	tgt := table.MustNew(schema)
	nan := math.NaN()
	src.MustAppendRow(table.I(1), table.F(nan)) // NaN → finite: changed
	src.MustAppendRow(table.I(2), table.F(5))   // finite → NaN: changed
	src.MustAppendRow(table.I(3), table.F(nan)) // NaN → NaN: unchanged
	src.MustAppendRow(table.I(4), table.F(7))   // finite → finite: unchanged
	tgt.MustAppendRow(table.I(1), table.F(5))
	tgt.MustAppendRow(table.I(2), table.F(nan))
	tgt.MustAppendRow(table.I(3), table.F(nan))
	tgt.MustAppendRow(table.I(4), table.F(7))
	if err := src.SetKey("id"); err != nil {
		t.Fatal(err)
	}
	a, err := Align(src, tgt)
	if err != nil {
		t.Fatal(err)
	}
	mask, err := a.ChangedMask("v", 0)
	if err != nil {
		t.Fatal(err)
	}
	want := []bool{true, true, false, false}
	for i := range want {
		if mask[i] != want[i] {
			t.Errorf("mask[%d] = %v, want %v", i, mask[i], want[i])
		}
	}
	ud, err := a.UpdateDistance(0)
	if err != nil || ud != 2 {
		t.Errorf("update distance = %d, %v; want 2", ud, err)
	}
	attrs, err := a.ChangedAttrs(0)
	if err != nil || len(attrs) != 1 || attrs[0] != "v" {
		t.Errorf("changed attrs = %v, %v; want [v]", attrs, err)
	}
}

// TestAlignDoesNotMutateInputs pins the no-side-effect contract: aligning
// must leave the target's key declaration untouched (it used to SetKey the
// caller's table, racing concurrent aligns of a shared table).
func TestAlignDoesNotMutateInputs(t *testing.T) {
	src, tgt := snapshotPair(t)
	if got := tgt.Key(); len(got) != 0 {
		t.Fatalf("test precondition: tgt key = %v", got)
	}
	if _, err := Align(src, tgt); err != nil {
		t.Fatal(err)
	}
	if got := tgt.Key(); len(got) != 0 {
		t.Errorf("Align set the target's key: %v", got)
	}
	if _, err := AlignCommon(src, tgt); err != nil {
		t.Fatal(err)
	}
	if got := tgt.Key(); len(got) != 0 {
		t.Errorf("AlignCommon set the target's key: %v", got)
	}
}

// TestConcurrentAlignSharedTables aligns a chain of shared snapshots from
// many goroutines at once — the parallel-timeline access pattern, where the
// middle snapshot is one step's target and the next step's source. Run under
// -race (CI does) this pins that Align is free of input mutation.
func TestConcurrentAlignSharedTables(t *testing.T) {
	schema := table.Schema{{Name: "id", Type: table.Int}, {Name: "pay", Type: table.Float}}
	mk := func(bump float64) *table.Table {
		tbl := table.MustNew(schema)
		for i := 0; i < 64; i++ {
			tbl.MustAppendRow(table.I(int64(i)), table.F(float64(i*100)+bump))
		}
		if err := tbl.SetKey("id"); err != nil {
			t.Fatal(err)
		}
		return tbl
	}
	snaps := []*table.Table{mk(0), mk(10), mk(20), mk(30)}
	var wg sync.WaitGroup
	for iter := 0; iter < 8; iter++ {
		for i := 0; i+1 < len(snaps); i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				a, err := Align(snaps[i], snaps[i+1])
				if err != nil {
					t.Error(err)
					return
				}
				if _, err := a.ChangedMask("pay", 0); err != nil {
					t.Error(err)
				}
			}(i)
		}
	}
	wg.Wait()
}

// TestMatchKeys pins the exported row-matching primitive the store's delta
// encoder and AlignCommon share: pairs in source order, one-sided rows in
// their own side's order, duplicates rejected with the offending key named.
func TestMatchKeys(t *testing.T) {
	m, err := MatchKeys([]string{"a", "b", "c", "e"}, []string{"b", "d", "a", "e"})
	if err != nil {
		t.Fatal(err)
	}
	wantPairs := [][2]int{{0, 2}, {1, 0}, {3, 3}}
	if !reflect.DeepEqual(m.Pairs, wantPairs) {
		t.Errorf("pairs = %v, want %v", m.Pairs, wantPairs)
	}
	if !reflect.DeepEqual(m.SrcOnly, []int{2}) {
		t.Errorf("srcOnly = %v, want [2]", m.SrcOnly)
	}
	if !reflect.DeepEqual(m.TgtOnly, []int{1}) {
		t.Errorf("tgtOnly = %v, want [1]", m.TgtOnly)
	}

	if _, err := MatchKeys([]string{"a", "a"}, []string{"b"}); err == nil || !strings.Contains(err.Error(), `"a"`) {
		t.Errorf("duplicate source key: err = %v", err)
	}
	if _, err := MatchKeys([]string{"a"}, []string{"b", "b"}); err == nil || !strings.Contains(err.Error(), `"b"`) {
		t.Errorf("duplicate target key: err = %v", err)
	}

	// Disjoint and empty inputs.
	m, err = MatchKeys(nil, []string{"x"})
	if err != nil || len(m.Pairs) != 0 || len(m.TgtOnly) != 1 {
		t.Errorf("empty source: %+v, %v", m, err)
	}
}
