package diff

import (
	"fmt"
	"sort"

	"charles/internal/csvio"
	"charles/internal/table"
)

// ApplyChangeSet materializes a child snapshot by applying one ChangeSet to
// its parent table in memory — the delta-native replacement for checking the
// child out of the store (blob reconstruction plus a full CSV parse). The
// result is identical to that checkout, row order included: the parent must
// be in canonical (key-sorted) layout, ops merge in key order, and every
// column whose cell multiset changed is re-inferred with exactly the CSV
// reader's type lattice, so a patch that removes a column's only non-numeric
// text narrows the column just as a re-parse would.
//
// Inputs the ops cannot reproduce faithfully — cells that do not parse under
// the parent schema (the checkout would widen the column), non-canonical key
// texts (the applied row order could diverge from the checkout's), ops
// contradicting the parent row set — return ErrNotDeltaNative-wrapped
// errors; callers fall back to a plain checkout.
func ApplyChangeSet(parent *table.Table, cs *ChangeSet) (*table.Table, error) {
	if cs == nil || cs.Materialized {
		return nil, fmt.Errorf("%w: version is materialized", ErrNotDeltaNative)
	}
	key := parent.Key()
	if len(key) == 0 {
		return nil, ErrNoKey
	}
	schema := parent.Schema()
	norm, err := newKeyNormalizer(parent, key)
	if err != nil {
		return nil, err
	}
	keyCol := make([]bool, len(schema))
	for ci, f := range schema {
		for _, k := range key {
			if f.Name == k {
				keyCol[ci] = true
			}
		}
	}

	// Normalize the ops into lookup form, insisting on canonical key texts.
	removes := make(map[string]bool, len(cs.Removed))
	for _, raw := range cs.Removed {
		k, err := norm.normalizeStable(raw)
		if err != nil {
			return nil, err
		}
		removes[k] = true
	}
	patches := make(map[string]map[int]string, len(cs.Patched))
	for _, p := range cs.Patched {
		k, err := norm.normalizeStable(p.Key)
		if err != nil {
			return nil, err
		}
		if len(p.Cols) != len(p.Vals) {
			return nil, fmt.Errorf("%w: patch for key %q has %d columns, %d values", ErrNotDeltaNative, k, len(p.Cols), len(p.Vals))
		}
		cells := make(map[int]string, len(p.Cols))
		for i, ci := range p.Cols {
			if ci < 0 || ci >= len(schema) {
				return nil, fmt.Errorf("%w: patch for key %q: column %d out of range", ErrNotDeltaNative, k, ci)
			}
			if keyCol[ci] {
				return nil, fmt.Errorf("%w: patch for key %q rewrites key column %q", ErrNotDeltaNative, k, schema[ci].Name)
			}
			cells[ci] = p.Vals[i]
		}
		patches[k] = cells
	}
	type insert struct {
		key   string
		cells []string
	}
	inserts := make([]insert, 0, len(cs.Inserted))
	for _, ins := range cs.Inserted {
		k, err := norm.normalizeStable(ins.Key)
		if err != nil {
			return nil, err
		}
		if len(ins.Cells) != len(schema) {
			return nil, fmt.Errorf("%w: insert for key %q has %d cells, want %d", ErrNotDeltaNative, k, len(ins.Cells), len(schema))
		}
		if ik, err := norm.keyFromCells(ins.Cells); err != nil {
			return nil, err
		} else if ik != k {
			return nil, fmt.Errorf("%w: inserted key %q disagrees with its key cells (%q)", ErrNotDeltaNative, k, ik)
		}
		inserts = append(inserts, insert{key: k, cells: ins.Cells})
	}
	sort.Slice(inserts, func(i, j int) bool { return inserts[i].key < inserts[j].key })

	// The parent must be canonically key-sorted, or the merged row order
	// cannot match the child checkout's.
	n := parent.NumRows()
	pkeys := make([]string, n)
	for r := 0; r < n; r++ {
		k, err := parent.KeyFor(r, key)
		if err != nil {
			return nil, err
		}
		if r > 0 && pkeys[r-1] >= k {
			return nil, fmt.Errorf("%w: parent rows are not key-sorted", ErrNotDeltaNative)
		}
		pkeys[r] = k
	}

	// Merge parent rows with the sorted inserts, dropping removed keys.
	// refs[i] >= 0 is a parent row; refs[i] < 0 is insert ^refs[i].
	if len(removes) > n {
		return nil, fmt.Errorf("%w: %d removed key(s) exceed the base's %d rows", ErrNotDeltaNative, len(removes), n)
	}
	refs := make([]int, 0, n+len(inserts)-len(removes))
	matchedRemoves, matchedPatches := 0, 0
	ii := 0
	for r := 0; r < n; r++ {
		k := pkeys[r]
		for ii < len(inserts) && inserts[ii].key < k {
			refs = append(refs, ^ii)
			ii++
		}
		if ii < len(inserts) && inserts[ii].key == k {
			return nil, fmt.Errorf("%w: inserted key %q already in base", ErrNotDeltaNative, k)
		}
		if removes[k] {
			matchedRemoves++
			if patches[k] != nil {
				return nil, fmt.Errorf("%w: key %q both removed and patched", ErrNotDeltaNative, k)
			}
			continue
		}
		if patches[k] != nil {
			matchedPatches++
		}
		refs = append(refs, r)
	}
	for ; ii < len(inserts); ii++ {
		refs = append(refs, ^ii)
	}
	if matchedRemoves != len(removes) {
		return nil, fmt.Errorf("%w: %d removed key(s) not in base", ErrNotDeltaNative, len(removes)-matchedRemoves)
	}
	if matchedPatches != len(patches) {
		return nil, fmt.Errorf("%w: %d patched key(s) not in base", ErrNotDeltaNative, len(patches)-matchedPatches)
	}

	// cellText reproduces the child's canonical CSV cell for (ref, ci):
	// the raw op text for inserted and patched cells, Value.Str otherwise.
	cellText := func(ref, ci int) string {
		if ref < 0 {
			return inserts[^ref].cells[ci]
		}
		if cells := patches[pkeys[ref]]; cells != nil {
			if v, ok := cells[ci]; ok {
				return v
			}
		}
		col := parent.ColumnAt(ci)
		if col.IsNull(ref) {
			return ""
		}
		return col.Value(ref).Str()
	}

	// Re-infer the type of every column whose cell multiset changed, so the
	// applied table's types are exactly what a CSV re-parse of the child
	// would infer: a removed row may have carried the one cell that pinned a
	// column wide, an inserted cell can widen a column or give an all-null
	// one its first real type, and a patch can do either. Rows added or
	// removed touch every column (keys included); otherwise only the patched
	// columns can move.
	candidate := make([]bool, len(schema))
	if len(removes) > 0 || len(inserts) > 0 {
		for ci := range candidate {
			candidate[ci] = true
		}
	} else {
		for _, cells := range patches {
			for ci := range cells {
				candidate[ci] = true
			}
		}
	}
	outSchema := append(table.Schema(nil), schema...)
	retyped := false
	texts := make([]string, len(refs))
	for ci := range schema {
		if !candidate[ci] {
			continue
		}
		for i, ref := range refs {
			texts[i] = cellText(ref, ci)
		}
		if ft := csvio.InferCells(texts); ft != schema[ci].Type {
			outSchema[ci].Type = ft
			retyped = true
		}
	}

	// Fast path: pure cell patches with stable types — clone and overwrite.
	if len(inserts) == 0 && len(removes) == 0 && !retyped {
		out := parent.Clone()
		for k, cells := range patches {
			r := sort.SearchStrings(pkeys, k) // verified present above
			for ci, val := range cells {
				v, err := csvio.ParseCell(val, schema[ci].Type)
				if err != nil {
					return nil, fmt.Errorf("%w: key %q column %q: %v", ErrNotDeltaNative, k, schema[ci].Name, err)
				}
				if err := out.ColumnAt(ci).Set(r, v); err != nil {
					return nil, err
				}
			}
		}
		return out, nil
	}

	out, err := table.New(outSchema)
	if err != nil {
		return nil, err
	}
	vals := make([]table.Value, len(schema))
	for _, ref := range refs {
		for ci := range schema {
			if ref >= 0 && outSchema[ci].Type == schema[ci].Type {
				if _, patched := patches[pkeys[ref]][ci]; !patched {
					vals[ci] = parent.ColumnAt(ci).Value(ref)
					continue
				}
			}
			v, err := csvio.ParseCell(cellText(ref, ci), outSchema[ci].Type)
			if err != nil {
				return nil, fmt.Errorf("%w: column %q: %v", ErrNotDeltaNative, outSchema[ci].Name, err)
			}
			vals[ci] = v
		}
		if err := out.AppendRow(vals...); err != nil {
			return nil, err
		}
	}
	if err := out.SetKey(key...); err != nil {
		return nil, err
	}
	return out, nil
}
