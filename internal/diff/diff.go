// Package diff aligns two snapshots of a relational table by primary key and
// extracts cell-level changes. It enforces the ChARLES preconditions —
// identical schemas, identical entity sets (no inserts or deletes) — and
// provides the syntactic-change primitives (changed-cell lists, update
// distance) that the semantic layers and the baselines build on.
package diff

import (
	"errors"
	"fmt"
	"math"

	"charles/internal/table"
)

// Errors reported by Align.
var (
	ErrSchemaMismatch = errors.New("diff: source and target schemas differ")
	ErrNoKey          = errors.New("diff: no primary key set on source table")
	ErrEntityMismatch = errors.New("diff: source and target contain different entities")
)

// Aligned is a pair of snapshots whose rows have been matched by primary
// key. Row r of Source corresponds to row TgtRow[r] of Target.
type Aligned struct {
	Source *table.Table
	Target *table.Table
	TgtRow []int // source row -> target row
}

// Align validates the snapshot pair and matches rows by primary key. The key
// declared on src is used (and must be declared; tgt needs no declaration of
// its own). Every source entity must appear in the target and vice versa.
//
// Align never mutates its inputs: the target is matched through a locally
// built key index, so the same tables can be aligned from any number of
// goroutines concurrently (the parallel timeline aligns a shared middle
// snapshot as the target of one step and the source of the next).
func Align(src, tgt *table.Table) (*Aligned, error) {
	if !src.Schema().Equal(tgt.Schema()) {
		return nil, ErrSchemaMismatch
	}
	key := src.Key()
	if len(key) == 0 {
		return nil, ErrNoKey
	}
	if src.NumRows() != tgt.NumRows() {
		return nil, fmt.Errorf("%w: %d source rows vs %d target rows", ErrEntityMismatch, src.NumRows(), tgt.NumRows())
	}
	tindex, err := tgt.KeyIndexFor(key)
	if err != nil {
		return nil, err
	}
	m := make([]int, src.NumRows())
	for r := 0; r < src.NumRows(); r++ {
		k, err := src.KeyOf(r)
		if err != nil {
			return nil, err
		}
		tr, ok := tindex[k]
		if !ok {
			return nil, fmt.Errorf("%w: key %q missing from target", ErrEntityMismatch, k)
		}
		m[r] = tr
	}
	return &Aligned{Source: src, Target: tgt, TgtRow: m}, nil
}

// RowMatch is the outcome of matching two row sets by encoded primary key:
// the row-level join every tolerant diff and the store's delta encoder are
// built on. Indices refer to positions in the key slices given to MatchKeys
// (equivalently: row numbers of the snapshots the keys were encoded from).
type RowMatch struct {
	// Pairs lists (src, tgt) index pairs for keys present on both sides,
	// in src order.
	Pairs [][2]int
	// SrcOnly lists indices whose key appears only on the source side
	// (deleted rows), in src order.
	SrcOnly []int
	// TgtOnly lists indices whose key appears only on the target side
	// (inserted rows), in tgt order.
	TgtOnly []int
}

// MatchKeys joins two encoded-key sequences (table.KeyOf / table.KeyFor
// encoding) into pairs, deletions, and insertions. Duplicate keys within one
// side are rejected — a relation with a duplicated primary key cannot be
// row-matched meaningfully. The match is purely positional and never touches
// a table, so callers may run it over raw CSV rows, cached key slices, or
// anything else that can produce the encoded keys.
func MatchKeys(src, tgt []string) (*RowMatch, error) {
	tindex := make(map[string]int, len(tgt))
	for i, k := range tgt {
		if prev, dup := tindex[k]; dup {
			return nil, fmt.Errorf("diff: duplicate key %q at target rows %d and %d", k, prev, i)
		}
		tindex[k] = i
	}
	m := &RowMatch{}
	seen := make(map[string]int, len(src))
	for i, k := range src {
		if prev, dup := seen[k]; dup {
			return nil, fmt.Errorf("diff: duplicate key %q at source rows %d and %d", k, prev, i)
		}
		seen[k] = i
		if ti, ok := tindex[k]; ok {
			m.Pairs = append(m.Pairs, [2]int{i, ti})
		} else {
			m.SrcOnly = append(m.SrcOnly, i)
		}
	}
	for i, k := range tgt {
		if _, ok := seen[k]; !ok {
			m.TgtOnly = append(m.TgtOnly, i)
		}
	}
	return m, nil
}

// encodedKeys returns KeyFor(r, key) for every row of t.
func encodedKeys(t *table.Table, key []string) ([]string, error) {
	out := make([]string, t.NumRows())
	for r := range out {
		k, err := t.KeyFor(r, key)
		if err != nil {
			return nil, err
		}
		out[r] = k
	}
	return out, nil
}

// CommonAlignment is a tolerant alignment over the entity intersection:
// rows only in the source are reported as deleted, rows only in the target
// as inserted, and the embedded Aligned covers the common entities — so
// summarization still works on datasets that violate the paper's
// no-insert/no-delete assumption.
type CommonAlignment struct {
	*Aligned
	// Deleted holds the original source row indices absent from the target.
	Deleted []int
	// Inserted holds the original target row indices absent from the source.
	Inserted []int
}

// AlignCommon matches the snapshots on the intersection of their entities.
// Schemas must still agree and src must declare a primary key, but row sets
// may differ; the deviation is reported rather than rejected. Like Align, it
// never mutates its inputs (the gathered common-entity tables the result
// embeds are private copies).
func AlignCommon(src, tgt *table.Table) (*CommonAlignment, error) {
	if !src.Schema().Equal(tgt.Schema()) {
		return nil, ErrSchemaMismatch
	}
	key := src.Key()
	if len(key) == 0 {
		return nil, ErrNoKey
	}
	skeys, err := encodedKeys(src, key)
	if err != nil {
		return nil, err
	}
	tkeys, err := encodedKeys(tgt, key)
	if err != nil {
		return nil, err
	}
	m, err := MatchKeys(skeys, tkeys)
	if err != nil {
		return nil, err
	}
	ca := &CommonAlignment{Deleted: m.SrcOnly, Inserted: m.TgtOnly}
	srcCommon := make([]int, len(m.Pairs))
	for i, p := range m.Pairs {
		srcCommon[i] = p[0]
	}
	// Common target rows in target row order (Pairs is src-ordered).
	inserted := make(map[int]bool, len(m.TgtOnly))
	for _, r := range m.TgtOnly {
		inserted[r] = true
	}
	tgtCommon := make([]int, 0, len(m.Pairs))
	for r := range tkeys {
		if !inserted[r] {
			tgtCommon = append(tgtCommon, r)
		}
	}
	fsrc := src.Gather(srcCommon)
	ftgt := tgt.Gather(tgtCommon)
	if err := fsrc.SetKey(key...); err != nil {
		return nil, err
	}
	if err := ftgt.SetKey(key...); err != nil {
		return nil, err
	}
	a, err := Align(fsrc, ftgt)
	if err != nil {
		return nil, err
	}
	ca.Aligned = a
	return ca, nil
}

// Change is one modified cell.
type Change struct {
	SrcRow int
	Attr   string
	Old    table.Value
	New    table.Value
}

// Delta returns old and new numeric values of attr aligned by source row
// order: old[r] = source value, new[r] = matched target value.
func (a *Aligned) Delta(attr string) (oldVals, newVals []float64, err error) {
	sc, err := a.Source.Column(attr)
	if err != nil {
		return nil, nil, err
	}
	tc, err := a.Target.Column(attr)
	if err != nil {
		return nil, nil, err
	}
	n := a.Source.NumRows()
	oldVals = make([]float64, n)
	newVals = make([]float64, n)
	for r := 0; r < n; r++ {
		oldVals[r] = sc.Float(r)
		newVals[r] = tc.Float(a.TgtRow[r])
	}
	return oldVals, newVals, nil
}

// ChangedMask reports, per source row, whether attr differs between the
// snapshots. Numeric comparisons use the given absolute tolerance.
func (a *Aligned) ChangedMask(attr string, tol float64) ([]bool, error) {
	sc, err := a.Source.Column(attr)
	if err != nil {
		return nil, err
	}
	tc, err := a.Target.Column(attr)
	if err != nil {
		return nil, err
	}
	n := a.Source.NumRows()
	out := make([]bool, n)
	for r := 0; r < n; r++ {
		out[r] = cellChanged(sc, r, tc, a.TgtRow[r], tol)
	}
	return out, nil
}

// Changes lists every modified cell of attr (in source row order).
func (a *Aligned) Changes(attr string, tol float64) ([]Change, error) {
	mask, err := a.ChangedMask(attr, tol)
	if err != nil {
		return nil, err
	}
	sc := a.Source.MustColumn(attr)
	tc := a.Target.MustColumn(attr)
	var out []Change
	for r, ch := range mask {
		if ch {
			out = append(out, Change{SrcRow: r, Attr: attr, Old: sc.Value(r), New: tc.Value(a.TgtRow[r])})
		}
	}
	return out, nil
}

// AllChanges lists every modified cell across all non-key attributes.
func (a *Aligned) AllChanges(tol float64) ([]Change, error) {
	keySet := map[string]bool{}
	for _, k := range a.Source.Key() {
		keySet[k] = true
	}
	var out []Change
	for _, f := range a.Source.Schema() {
		if keySet[f.Name] {
			continue
		}
		ch, err := a.Changes(f.Name, tol)
		if err != nil {
			return nil, err
		}
		out = append(out, ch...)
	}
	return out, nil
}

// UpdateDistance is the Müller et al. (CIKM 2006) notion specialized to the
// ChARLES setting (no inserts/deletes): the minimal number of cell
// modifications transforming source into target.
func (a *Aligned) UpdateDistance(tol float64) (int, error) {
	ch, err := a.AllChanges(tol)
	if err != nil {
		return 0, err
	}
	return len(ch), nil
}

// ChangedAttrs returns the non-key attributes with at least one modified
// cell, in schema order — the candidates for "target attribute of interest".
func (a *Aligned) ChangedAttrs(tol float64) ([]string, error) {
	keySet := map[string]bool{}
	for _, k := range a.Source.Key() {
		keySet[k] = true
	}
	var out []string
	for _, f := range a.Source.Schema() {
		if keySet[f.Name] {
			continue
		}
		mask, err := a.ChangedMask(f.Name, tol)
		if err != nil {
			return nil, err
		}
		for _, ch := range mask {
			if ch {
				out = append(out, f.Name)
				break
			}
		}
	}
	return out, nil
}

func cellChanged(sc *table.Column, sr int, tc *table.Column, tr int, tol float64) bool {
	sn, tn := sc.IsNull(sr), tc.IsNull(tr)
	if sn || tn {
		return sn != tn
	}
	if sc.Type.Numeric() && tc.Type.Numeric() {
		x, y := sc.Float(sr), tc.Float(tr)
		// NaN behaves like null: a transition into or out of NaN is a change,
		// NaN on both sides is not. (The naive |x−y| > tol test is always
		// false when either side is NaN, which made such transitions
		// invisible to ChangedMask, ChangedAttrs, and UpdateDistance.)
		if xn, yn := math.IsNaN(x), math.IsNaN(y); xn || yn {
			return xn != yn
		}
		d := x - y
		if d < 0 {
			d = -d
		}
		return d > tol
	}
	return !sc.Value(sr).Equal(tc.Value(tr))
}
