package diff

import (
	"errors"
	"reflect"
	"testing"

	"charles/internal/table"
)

// deltaBase builds a canonical (key-sorted) 4-row base snapshot.
func deltaBase(t *testing.T) *table.Table {
	t.Helper()
	schema := table.Schema{
		{Name: "id", Type: table.String},
		{Name: "grade", Type: table.Int},
		{Name: "pay", Type: table.Float},
		{Name: "dept", Type: table.String},
	}
	b := table.MustNew(schema)
	b.MustAppendRow(table.S("a"), table.I(1), table.F(100.5), table.S("eng"))
	b.MustAppendRow(table.S("b"), table.I(2), table.F(200.5), table.S("fin"))
	b.MustAppendRow(table.S("c"), table.I(3), table.F(300.5), table.S("pol"))
	b.MustAppendRow(table.S("d"), table.I(4), table.F(400.5), table.S("eng"))
	if err := b.SetKey("id"); err != nil {
		t.Fatal(err)
	}
	return b
}

func TestResultFromChangeSetMatchesPair(t *testing.T) {
	base := deltaBase(t)
	cs := &ChangeSet{
		Removed:  []string{"b"},
		Inserted: []InsertedRow{{Key: "e", Cells: []string{"e", "5", "500.5", "fin"}}},
		Patched: []RowPatch{
			{Key: "a", Cols: []int{2}, Vals: []string{"150.5"}},
			{Key: "c", Cols: []int{1, 3}, Vals: []string{"30", "eng"}},
			{Key: "d", Cols: []int{2}, Vals: []string{"400.5"}}, // no-op patch: same value
		},
	}
	got, err := ResultFromChangeSets(base, []*ChangeSet{cs}, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	child, err := ApplyChangeSet(base, cs)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ResultFromPair(base, child, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("delta-native result differs\ngot:  %+v\nwant: %+v", got, want)
	}
	if got.UpdateDistance != 3 {
		t.Errorf("update distance = %d, want 3 (no-op patch must not count)", got.UpdateDistance)
	}
	if !reflect.DeepEqual(got.Removed, []string{"b"}) || !reflect.DeepEqual(got.Inserted, []string{"e"}) {
		t.Errorf("removed/inserted = %v / %v", got.Removed, got.Inserted)
	}
	if !reflect.DeepEqual(got.ChangedAttrs, []string{"grade", "pay", "dept"}) {
		t.Errorf("changed attrs = %v, want schema order [grade pay dept]", got.ChangedAttrs)
	}
}

// TestChangeSetComposition pins the multi-hop compose rules: patch-then-patch
// keeps the last value, insert-then-patch patches the pending row,
// insert-then-remove vanishes, remove-then-insert becomes a cell comparison,
// and a patch landing back on the original value is no change at all.
func TestChangeSetComposition(t *testing.T) {
	base := deltaBase(t)
	s1 := &ChangeSet{
		Removed:  []string{"b"},
		Inserted: []InsertedRow{{Key: "x", Cells: []string{"x", "9", "900.5", "new"}}},
		Patched: []RowPatch{
			{Key: "a", Cols: []int{2}, Vals: []string{"111.5"}},
			{Key: "c", Cols: []int{3}, Vals: []string{"tmp"}},
		},
	}
	s2 := &ChangeSet{
		Removed:  []string{"x"},                                                        // insert then remove: never existed
		Inserted: []InsertedRow{{Key: "b", Cells: []string{"b", "2", "250.5", "fin"}}}, // remove then re-insert: cell change
		Patched: []RowPatch{
			{Key: "a", Cols: []int{2}, Vals: []string{"122.5"}}, // patch twice: last wins
			{Key: "c", Cols: []int{3}, Vals: []string{"pol"}},   // patched back: no change
		},
	}
	got, err := ResultFromChangeSets(base, []*ChangeSet{s1, s2}, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	mid, err := ApplyChangeSet(base, s1)
	if err != nil {
		t.Fatal(err)
	}
	child, err := ApplyChangeSet(mid, s2)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ResultFromPair(base, child, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("composed result differs\ngot:  %+v\nwant: %+v", got, want)
	}
	if len(got.Removed) != 0 || len(got.Inserted) != 0 {
		t.Errorf("removed/inserted = %v / %v, want none (all membership changes cancelled)", got.Removed, got.Inserted)
	}
	// a patched twice (one change) + b removed-and-reinserted with a new pay
	// (one change); c patched back and x inserted-then-removed contribute
	// nothing.
	if got.UpdateDistance != 2 {
		t.Errorf("update distance = %d, want 2", got.UpdateDistance)
	}
}

func TestResultFromChangeSetTolerance(t *testing.T) {
	base := deltaBase(t)
	cs := &ChangeSet{Patched: []RowPatch{{Key: "a", Cols: []int{2}, Vals: []string{"100.5000001"}}}}
	res, err := ResultFromChangeSets(base, []*ChangeSet{cs}, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	if res.UpdateDistance != 0 {
		t.Errorf("sub-tolerance patch counted as a change: %+v", res.Changes)
	}
	res, err = ResultFromChangeSets(base, []*ChangeSet{cs}, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if res.UpdateDistance != 1 {
		t.Errorf("supra-tolerance patch not counted: %+v", res.Changes)
	}
}

func TestResultFromChangeSetNullTransitions(t *testing.T) {
	base := deltaBase(t)
	cs := &ChangeSet{Patched: []RowPatch{{Key: "a", Cols: []int{2}, Vals: []string{""}}}}
	res, err := ResultFromChangeSets(base, []*ChangeSet{cs}, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if res.UpdateDistance != 1 || !res.Changes[0].New.IsNull() {
		t.Fatalf("null transition not reported: %+v", res.Changes)
	}
	child, err := ApplyChangeSet(base, cs)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ResultFromPair(base, child, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, want) {
		t.Fatalf("null-transition result differs\ngot:  %+v\nwant: %+v", res, want)
	}
}

// TestResultFromChangeSetRejects pins the fallback contract: queries the ops
// cannot answer faithfully are ErrNotDeltaNative, never silently wrong.
func TestResultFromChangeSetRejects(t *testing.T) {
	base := deltaBase(t)
	cases := map[string]*ChangeSet{
		"materialized":        {Materialized: true},
		"key column patch":    {Patched: []RowPatch{{Key: "a", Cols: []int{0}, Vals: []string{"z"}}}},
		"column out of range": {Patched: []RowPatch{{Key: "a", Cols: []int{9}, Vals: []string{"1"}}}},
		"remove missing key":  {Removed: []string{"nope"}},
		"patch missing key":   {Patched: []RowPatch{{Key: "nope", Cols: []int{2}, Vals: []string{"1.5"}}}},
		"insert existing key": {Inserted: []InsertedRow{{Key: "a", Cells: []string{"a", "1", "1.5", "x"}}}},
		"short insert":        {Inserted: []InsertedRow{{Key: "z", Cells: []string{"z", "1"}}}},
	}
	for name, cs := range cases {
		if _, err := ResultFromChangeSets(base, []*ChangeSet{cs}, 1e-9); !errors.Is(err, ErrNotDeltaNative) {
			t.Errorf("%s: err = %v, want ErrNotDeltaNative", name, err)
		}
		if _, err := ApplyChangeSet(base, cs); !errors.Is(err, ErrNotDeltaNative) {
			t.Errorf("%s: ApplyChangeSet err = %v, want ErrNotDeltaNative", name, err)
		}
	}

	// Cells that do not parse under the base schema are a Result-only
	// rejection (the answer would need the child's wider types): snapshot
	// materialization handles them by re-inferring, exactly like a re-parse.
	widening := map[string]*ChangeSet{
		"unparsable cell":   {Patched: []RowPatch{{Key: "a", Cols: []int{1}, Vals: []string{"not-an-int"}}}},
		"unparsable insert": {Inserted: []InsertedRow{{Key: "z", Cells: []string{"z", "x", "1.5", "q"}}}},
	}
	for name, cs := range widening {
		if _, err := ResultFromChangeSets(base, []*ChangeSet{cs}, 1e-9); !errors.Is(err, ErrNotDeltaNative) {
			t.Errorf("%s: err = %v, want ErrNotDeltaNative", name, err)
		}
		child, err := ApplyChangeSet(base, cs)
		if err != nil {
			t.Errorf("%s: ApplyChangeSet err = %v, want widened child", name, err)
			continue
		}
		if typ := child.Schema()[1].Type; typ != table.String {
			t.Errorf("%s: grade column type = %s, want string (widened like a re-parse)", name, typ)
		}
	}
}

// TestApplyChangeSetRetypesColumns pins the re-inference contract: applying
// ops that change a column's cell multiset must land on exactly the type a
// CSV re-parse of the child would infer.
func TestApplyChangeSetRetypesColumns(t *testing.T) {
	schema := table.Schema{
		{Name: "id", Type: table.String},
		{Name: "mixed", Type: table.String},
	}
	b := table.MustNew(schema)
	b.MustAppendRow(table.S("a"), table.S("12"))
	b.MustAppendRow(table.S("b"), table.S("oops"))
	if err := b.SetKey("id"); err != nil {
		t.Fatal(err)
	}

	// Patching away the only non-numeric cell narrows the column to Int.
	cs := &ChangeSet{Patched: []RowPatch{{Key: "b", Cols: []int{1}, Vals: []string{"7"}}}}
	child, err := ApplyChangeSet(b, cs)
	if err != nil {
		t.Fatal(err)
	}
	if typ := child.Schema()[1].Type; typ != table.Int {
		t.Errorf("patched-away offender: column type = %s, want int", typ)
	}

	// Removing the offending row narrows it too.
	cs = &ChangeSet{Removed: []string{"b"}}
	child, err = ApplyChangeSet(b, cs)
	if err != nil {
		t.Fatal(err)
	}
	if typ := child.Schema()[1].Type; typ != table.Int {
		t.Errorf("removed offender: column type = %s, want int", typ)
	}

	// Inserting into an all-null String column pins its first real type.
	allNull := table.MustNew(schema)
	allNull.MustAppendRow(table.S("a"), table.Null(table.String))
	if err := allNull.SetKey("id"); err != nil {
		t.Fatal(err)
	}
	cs = &ChangeSet{Inserted: []InsertedRow{{Key: "b", Cells: []string{"b", "true"}}}}
	child, err = ApplyChangeSet(allNull, cs)
	if err != nil {
		t.Fatal(err)
	}
	if typ := child.Schema()[1].Type; typ != table.Bool {
		t.Errorf("insert into all-null column: type = %s, want bool", typ)
	}
}

func TestApplyChangeSetRowOrder(t *testing.T) {
	base := deltaBase(t)
	cs := &ChangeSet{
		Removed: []string{"a"},
		Inserted: []InsertedRow{
			{Key: "aa", Cells: []string{"aa", "7", "700.5", "fin"}},
			{Key: "z", Cells: []string{"z", "8", "800.5", "pol"}},
		},
	}
	child, err := ApplyChangeSet(base, cs)
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for r := 0; r < child.NumRows(); r++ {
		k, err := child.KeyOf(r)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, k)
	}
	want := []string{"aa", "b", "c", "d", "z"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("applied row order = %v, want canonical %v", got, want)
	}
}

// TestMatchKeysSeparatorCollision is the key-aliasing regression test: two
// distinct multi-column keys whose cells contain the key separator must not
// encode identically (pre-fix, ("a\x1fb","c") and ("a","b\x1fc") aliased,
// corrupting MatchKeys and the store's delta encoder).
func TestMatchKeysSeparatorCollision(t *testing.T) {
	schema := table.Schema{
		{Name: "k1", Type: table.String},
		{Name: "k2", Type: table.String},
		{Name: "v", Type: table.Int},
	}
	tbl := table.MustNew(schema)
	tbl.MustAppendRow(table.S("a"+table.KeySep+"b"), table.S("c"), table.I(1))
	tbl.MustAppendRow(table.S("a"), table.S("b"+table.KeySep+"c"), table.I(2))
	if err := tbl.SetKey("k1", "k2"); err != nil {
		t.Fatal(err)
	}
	k0, err := tbl.KeyOf(0)
	if err != nil {
		t.Fatal(err)
	}
	k1, err := tbl.KeyOf(1)
	if err != nil {
		t.Fatal(err)
	}
	if k0 == k1 {
		t.Fatalf("distinct keys alias: %q", k0)
	}
	if _, err := tbl.KeyIndexFor(tbl.Key()); err != nil {
		t.Fatalf("valid table reported duplicate keys: %v", err)
	}
	if m, err := MatchKeys([]string{k0, k1}, []string{k1}); err != nil || len(m.Pairs) != 1 || len(m.SrcOnly) != 1 {
		t.Fatalf("MatchKeys over separator-bearing keys = %+v, %v", m, err)
	}
}

// TestDuplicatedPatchColumnLastWins pins the corrupt-ish-but-decodable op
// shape a delta pack could carry: the same column index twice in one patch.
// Reconstruction applies the writes in order (last wins), so the change
// query must report exactly the final value — and nothing when the final
// write lands back on the original.
func TestDuplicatedPatchColumnLastWins(t *testing.T) {
	base := deltaBase(t)
	cs := &ChangeSet{Patched: []RowPatch{{Key: "a", Cols: []int{2, 2}, Vals: []string{"150.5", "175.5"}}}}
	res, err := ResultFromChangeSets(base, []*ChangeSet{cs}, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	child, err := ApplyChangeSet(base, cs)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ResultFromPair(base, child, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, want) {
		t.Fatalf("duplicated-column patch differs\ngot:  %+v\nwant: %+v", res, want)
	}
	if res.UpdateDistance != 1 || res.Changes[0].New.Str() != "175.5" {
		t.Fatalf("changes = %+v, want one change to 175.5", res.Changes)
	}

	// Final write restores the original value: no change at all.
	cancel := &ChangeSet{Patched: []RowPatch{{Key: "a", Cols: []int{2, 2}, Vals: []string{"150.5", "100.5"}}}}
	res, err = ResultFromChangeSets(base, []*ChangeSet{cancel}, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if res.UpdateDistance != 0 {
		t.Fatalf("cancelled duplicate patch still reported: %+v", res.Changes)
	}
}

// TestInsertKeyCellMismatchRejected pins the op-consistency gate: an insert
// whose declared key disagrees with its own key cells is corrupt and must
// not be answered from deltas.
func TestInsertKeyCellMismatchRejected(t *testing.T) {
	base := deltaBase(t)
	cs := &ChangeSet{Inserted: []InsertedRow{{Key: "z", Cells: []string{"zz", "5", "5.5", "fin"}}}}
	if _, err := ResultFromChangeSets(base, []*ChangeSet{cs}, 1e-9); !errors.Is(err, ErrNotDeltaNative) {
		t.Errorf("ResultFromChangeSets err = %v, want ErrNotDeltaNative", err)
	}
	if _, err := ApplyChangeSet(base, cs); !errors.Is(err, ErrNotDeltaNative) {
		t.Errorf("ApplyChangeSet err = %v, want ErrNotDeltaNative", err)
	}
}

// TestApplyChangeSetExcessRemovalsRejected pins the corrupt-set guard: more
// removed keys than the base has rows must error, not panic on a negative
// slice capacity.
func TestApplyChangeSetExcessRemovalsRejected(t *testing.T) {
	base := deltaBase(t)
	cs := &ChangeSet{Removed: []string{"a", "b", "c", "d", "e", "f"}}
	if _, err := ApplyChangeSet(base, cs); !errors.Is(err, ErrNotDeltaNative) {
		t.Fatalf("excess removals: err = %v, want ErrNotDeltaNative", err)
	}
}
