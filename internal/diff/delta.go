// Delta-native change queries: answering Diff-style questions straight from
// the row-level ops the version store's delta packs already persist, instead
// of checking out both snapshots and re-aligning them from scratch — the
// "maintain the answer under updates" framing (Berkholz et al.) applied to
// the repository's hottest read path. A ChangeSet is the decoded op list of
// one version against its base; Result is the answer to a change query; and
// the two constructors — ResultFromPair (align-based reference) and
// ResultFromChangeSets (delta-native) — are differentially tested to be
// bit-identical wherever the delta path is applicable.

package diff

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"charles/internal/csvio"
	"charles/internal/table"
)

// ErrNotDeltaNative reports that a change query or snapshot materialization
// could not be served from delta ops alone — a cell text that does not parse
// under the base schema, keys whose encoding is not canonical, ops that
// contradict the base row set, or a materialized (anchor) version in the
// chain. Callers fall back to the checkout+align path, which answers every
// query the delta path answers (and more), just slower.
var ErrNotDeltaNative = errors.New("diff: change query not answerable from deltas")

// ChangeSet is the decoded row-level delta of one version against its base:
// exactly the ops a delta pack persists — removed keys, inserted rows, and
// cell patches, addressed by the encoded primary key (table.EncodeKey
// encoding) with cell texts in canonical CSV form. Versions stored as full
// snapshots (anchors, roots, fallback full packs) have no ops and set
// Materialized instead.
type ChangeSet struct {
	// Version is the snapshot the ops produce (annotation; may be empty
	// for hand-built sets).
	Version string
	// Base is the snapshot the ops apply to ("" for materialized versions).
	Base string
	// Materialized marks versions stored whole: no delta ops exist, and
	// change queries against them must go through the align-based path.
	Materialized bool
	// Columns names the canonical header in schema order; patch and insert
	// cell indices refer to it. Optional: Store.Changes fills it for
	// presentation, the query paths resolve columns against the base table.
	Columns []string

	Removed  []string      // encoded keys deleted from the base, key-sorted
	Inserted []InsertedRow // rows whose key is absent from the base, key-sorted
	Patched  []RowPatch    // cell rewrites of rows present in both, key-sorted
}

// InsertedRow is one inserted row: its encoded key and the full record in
// canonical column order.
type InsertedRow struct {
	Key   string
	Cells []string
}

// RowPatch is one patched row: the changed column indices (canonical order)
// and the new cell texts, parallel slices.
type RowPatch struct {
	Key  string
	Cols []int
	Vals []string
}

// KeyedChange is one modified cell addressed by entity key rather than row
// number — the row-free form of Change that delta-native answers produce.
type KeyedChange struct {
	Key  string
	Attr string
	Old  table.Value
	New  table.Value
}

// Result is the answer to a change query between two snapshots: row-set
// membership changes plus the modified cells of the common entities. Both
// constructors produce the same deterministic shape — Removed in source row
// order, Inserted in target row order, Changes attribute-major (schema
// order) then source row order — so the align-based and delta-native paths
// can be compared byte for byte.
type Result struct {
	// Columns names every column of the (shared) schema in order.
	Columns []string
	// Removed lists encoded keys present only in the source.
	Removed []string
	// Inserted lists encoded keys present only in the target.
	Inserted []string
	// Changes lists every modified non-key cell of the common entities.
	Changes []KeyedChange
	// ChangedAttrs lists the non-key attributes with at least one modified
	// cell, in schema order.
	ChangedAttrs []string
	// UpdateDistance is len(Changes): the Müller et al. update distance
	// over the common entities.
	UpdateDistance int
}

// HasColumn reports whether the snapshots' shared schema has the named
// column (key columns included) — the target validation both the HTTP and
// CLI front-ends apply before filtering changes.
func (r *Result) HasColumn(name string) bool {
	for _, c := range r.Columns {
		if c == name {
			return true
		}
	}
	return false
}

// ChangesFor returns the modified cells of one attribute, in source row
// order (nil when it did not change).
func (r *Result) ChangesFor(attr string) []KeyedChange {
	var out []KeyedChange
	for _, ch := range r.Changes {
		if ch.Attr == attr {
			out = append(out, ch)
		}
	}
	return out
}

// ResultFromPair answers a change query the align-based way: match the two
// snapshots on their common entities (AlignCommon) and list every modified
// cell. This is the reference semantics the delta-native path must match.
func ResultFromPair(src, tgt *table.Table, tol float64) (*Result, error) {
	ca, err := AlignCommon(src, tgt)
	if err != nil {
		return nil, err
	}
	res := &Result{Columns: src.Schema().Names()}
	key := src.Key()
	for _, r := range ca.Deleted {
		k, err := src.KeyOf(r)
		if err != nil {
			return nil, err
		}
		res.Removed = append(res.Removed, k)
	}
	for _, r := range ca.Inserted {
		k, err := tgt.KeyFor(r, key)
		if err != nil {
			return nil, err
		}
		res.Inserted = append(res.Inserted, k)
	}
	changes, err := ca.AllChanges(tol)
	if err != nil {
		return nil, err
	}
	for _, ch := range changes {
		k, err := ca.Source.KeyOf(ch.SrcRow)
		if err != nil {
			return nil, err
		}
		res.Changes = append(res.Changes, KeyedChange{Key: k, Attr: ch.Attr, Old: ch.Old, New: ch.New})
	}
	res.ChangedAttrs, err = ca.ChangedAttrs(tol)
	if err != nil {
		return nil, err
	}
	res.UpdateDistance = len(res.Changes)
	return res, nil
}

// rowState is the composed fate of one key across a ChangeSet sequence.
type rowState struct {
	status byte           // 'r' removed, 'i' inserted, 'p' patched, 'R' replaced (removed then re-inserted)
	row    []string       // 'i'/'R': the full record
	cells  map[int]string // 'p': merged patched cells
}

// ResultFromChangeSets answers a change query straight from delta ops: given
// the source snapshot (one parent checkout) and the ChangeSets of each hop
// from source to target, it composes the ops — a key patched twice keeps the
// last value, a key removed and re-inserted becomes a cell comparison, a
// patch that lands back on the original value is no change at all — and
// evaluates the surviving candidates against the source's typed values with
// the same tolerance and null/NaN semantics as the align-based path. Neither
// the target snapshot's CSV nor a full MatchKeys alignment is ever touched:
// the work is proportional to the delta, not the relation.
//
// The result is bit-identical to ResultFromPair(parent, target, tol)
// whenever both paths answer — every schema-stable pair, which the fuzz
// corpus differentially pins. Queries the ops cannot faithfully answer — a
// cell that does not parse under the parent schema (the child checkout
// would re-infer a wider column type), non-canonical key texts, ops
// contradicting the parent row set — return ErrNotDeltaNative-wrapped
// errors, and the caller falls back to the align path. One asymmetry is
// deliberate: a delta that *narrows* a column's inferred type (rewriting or
// removing the one cell that kept it wide) is evaluated here under the
// source schema and answered, while the align path refuses the same pair
// with ErrSchemaMismatch — the delta path is strictly more available, never
// contradictory.
func ResultFromChangeSets(parent *table.Table, sets []*ChangeSet, tol float64) (*Result, error) {
	key := parent.Key()
	if len(key) == 0 {
		return nil, ErrNoKey
	}
	schema := parent.Schema()
	norm, err := newKeyNormalizer(parent, key)
	if err != nil {
		return nil, err
	}
	keyCol := make([]bool, len(schema))
	for ci, f := range schema {
		for _, k := range key {
			if f.Name == k {
				keyCol[ci] = true
			}
		}
	}

	ev, err := newDeltaEval(parent, schema, keyCol, tol, norm)
	if err != nil {
		return nil, err
	}
	for _, cs := range sets {
		if cs == nil || cs.Materialized {
			return nil, fmt.Errorf("%w: materialized version in the delta chain", ErrNotDeltaNative)
		}
	}

	// One ChangeSet whose op lists are strictly key-sorted (every pack's op
	// list is) needs no composition at all: evaluate the ops directly, with
	// no overlay map and no per-key state allocation. Sets that fail the
	// sortedness check — or multi-hop queries — take the general compose
	// path below.
	if len(sets) == 1 {
		if done, err := ev.evalSortedSet(sets[0], norm); done || err != nil {
			if err != nil {
				return nil, err
			}
			return ev.finalize(parent)
		}
	}

	overlay := map[string]*rowState{}
	for _, cs := range sets {
		for _, raw := range cs.Removed {
			k, err := norm.normalize(raw)
			if err != nil {
				return nil, err
			}
			st := overlay[k]
			switch {
			case st == nil || st.status == 'p':
				overlay[k] = &rowState{status: 'r'}
			case st.status == 'i':
				delete(overlay, k) // inserted then removed: never existed
			case st.status == 'R':
				overlay[k] = &rowState{status: 'r'}
			default: // removed twice
				return nil, fmt.Errorf("%w: key %q removed twice", ErrNotDeltaNative, k)
			}
		}
		for _, ins := range cs.Inserted {
			k, err := norm.normalize(ins.Key)
			if err != nil {
				return nil, err
			}
			if len(ins.Cells) != len(schema) {
				return nil, fmt.Errorf("%w: insert for key %q has %d cells, want %d", ErrNotDeltaNative, k, len(ins.Cells), len(schema))
			}
			row := append([]string(nil), ins.Cells...)
			st := overlay[k]
			switch {
			case st == nil:
				overlay[k] = &rowState{status: 'i', row: row}
			case st.status == 'r':
				overlay[k] = &rowState{status: 'R', row: row}
			default:
				return nil, fmt.Errorf("%w: key %q inserted while present", ErrNotDeltaNative, k)
			}
		}
		for _, p := range cs.Patched {
			k, err := norm.normalize(p.Key)
			if err != nil {
				return nil, err
			}
			if len(p.Cols) != len(p.Vals) {
				return nil, fmt.Errorf("%w: patch for key %q has %d columns, %d values", ErrNotDeltaNative, k, len(p.Cols), len(p.Vals))
			}
			st := overlay[k]
			if st == nil {
				st = &rowState{status: 'p', cells: map[int]string{}}
				overlay[k] = st
			}
			for i, ci := range p.Cols {
				if ci < 0 || ci >= len(schema) {
					return nil, fmt.Errorf("%w: patch for key %q: column %d out of range", ErrNotDeltaNative, k, ci)
				}
				if keyCol[ci] {
					return nil, fmt.Errorf("%w: patch for key %q rewrites key column %q", ErrNotDeltaNative, k, schema[ci].Name)
				}
				switch st.status {
				case 'p':
					st.cells[ci] = p.Vals[i]
				case 'i', 'R':
					st.row[ci] = p.Vals[i]
				default: // patch after remove
					return nil, fmt.Errorf("%w: key %q patched after removal", ErrNotDeltaNative, k)
				}
			}
		}
	}

	// Evaluate the composed overlay against the parent's typed values.
	for k, st := range overlay {
		r, inParent := ev.finder.find(k)
		switch st.status {
		case 'r':
			if !inParent {
				return nil, fmt.Errorf("%w: removed key %q not in base", ErrNotDeltaNative, k)
			}
			ev.removedRows = append(ev.removedRows, r)
		case 'i':
			if inParent {
				return nil, fmt.Errorf("%w: inserted key %q already in base", ErrNotDeltaNative, k)
			}
			if err := ev.evalInsert(k, st.row); err != nil {
				return nil, err
			}
		case 'R':
			if !inParent {
				return nil, fmt.Errorf("%w: replaced key %q not in base", ErrNotDeltaNative, k)
			}
			if ik, err := ev.norm.keyFromCells(st.row); err != nil {
				return nil, err
			} else if ik != k {
				return nil, fmt.Errorf("%w: re-inserted key %q disagrees with its key cells (%q)", ErrNotDeltaNative, k, ik)
			}
			for ci := range schema {
				if keyCol[ci] {
					continue
				}
				if err := ev.evalCell(k, r, ci, st.row[ci]); err != nil {
					return nil, err
				}
			}
		case 'p':
			if !inParent {
				return nil, fmt.Errorf("%w: patched key %q not in base", ErrNotDeltaNative, k)
			}
			for ci, val := range st.cells {
				if err := ev.evalCell(k, r, ci, val); err != nil {
					return nil, err
				}
			}
		}
	}
	return ev.finalize(parent)
}

// deltaEval accumulates a Result's raw material: removed rows, inserted
// keys, and per-column change buckets. Buckets keep schema order for free
// (the attribute-major output order), and each bucket tracks whether its
// rows arrived already sorted, so the common sorted-ops case never sorts
// the fat change structs at all.
type deltaEval struct {
	parent *table.Table
	schema table.Schema
	keyCol []bool
	tol    float64
	finder *rowFinder
	norm   *keyNormalizer

	removedRows []int
	inserted    []string
	cols        [][]bucketedChange
	colSorted   []bool
}

type bucketedChange struct {
	row    int
	change KeyedChange
}

func newDeltaEval(parent *table.Table, schema table.Schema, keyCol []bool, tol float64, norm *keyNormalizer) (*deltaEval, error) {
	finder, err := newRowFinder(parent, parent.Key())
	if err != nil {
		return nil, err
	}
	ev := &deltaEval{
		parent: parent, schema: schema, keyCol: keyCol, tol: tol, finder: finder, norm: norm,
		cols: make([][]bucketedChange, len(schema)), colSorted: make([]bool, len(schema)),
	}
	for ci := range ev.colSorted {
		ev.colSorted[ci] = true
	}
	return ev, nil
}

// evalCell compares one candidate cell (raw new text under the parent's
// column type) and records it when it really changed.
func (ev *deltaEval) evalCell(k string, r, ci int, val string) error {
	if ci < 0 || ci >= len(ev.schema) {
		return fmt.Errorf("%w: patch for key %q: column %d out of range", ErrNotDeltaNative, k, ci)
	}
	if ev.keyCol[ci] {
		return fmt.Errorf("%w: patch for key %q rewrites key column %q", ErrNotDeltaNative, k, ev.schema[ci].Name)
	}
	nv, err := csvio.ParseCell(val, ev.schema[ci].Type)
	if err != nil {
		return fmt.Errorf("%w: key %q column %q: %v", ErrNotDeltaNative, k, ev.schema[ci].Name, err)
	}
	col := ev.parent.ColumnAt(ci)
	b := ev.cols[ci]
	if n := len(b); n > 0 && b[n-1].row == r {
		// A duplicated column index within one op: the last write wins,
		// exactly as applyDelta applies it during reconstruction, so drop
		// the earlier verdict and re-evaluate.
		ev.cols[ci] = b[:n-1]
		b = ev.cols[ci]
	}
	if !changedValue(col, r, nv, ev.tol) {
		return nil
	}
	if n := len(b); n > 0 && b[n-1].row >= r {
		ev.colSorted[ci] = false
	}
	ev.cols[ci] = append(b, bucketedChange{row: r, change: KeyedChange{
		Key: k, Attr: ev.schema[ci].Name, Old: col.Value(r), New: nv,
	}})
	return nil
}

// evalInsert validates that an inserted row's cells parse under the parent
// schema (a cell that does not would widen the child's inferred column type,
// and the align path would then see different schemas), that its key cells
// agree with the declared op key, and records the key.
func (ev *deltaEval) evalInsert(k string, cells []string) error {
	for ci, cell := range cells {
		if _, err := csvio.ParseCell(cell, ev.schema[ci].Type); err != nil {
			return fmt.Errorf("%w: inserted key %q column %q: %v", ErrNotDeltaNative, k, ev.schema[ci].Name, err)
		}
	}
	ik, err := ev.norm.keyFromCells(cells)
	if err != nil {
		return err
	}
	if ik != k {
		return fmt.Errorf("%w: inserted key %q disagrees with its key cells (%q)", ErrNotDeltaNative, k, ik)
	}
	ev.inserted = append(ev.inserted, k)
	return nil
}

// evalSortedSet is the no-composition fast path for one strictly key-sorted
// ChangeSet (the shape every delta pack has). It reports done=false — with
// nothing recorded — when an op list turns out not to be strictly sorted
// after key normalization, sending the caller to the general compose path.
func (ev *deltaEval) evalSortedSet(cs *ChangeSet, norm *keyNormalizer) (done bool, err error) {
	normKeys := func(n int, keyAt func(int) string) ([]string, bool) {
		out := make([]string, n)
		for i := 0; i < n; i++ {
			k, err := norm.normalize(keyAt(i))
			if err != nil {
				return nil, false
			}
			if i > 0 && out[i-1] >= k {
				return nil, false
			}
			out[i] = k
		}
		return out, true
	}
	removed, ok := normKeys(len(cs.Removed), func(i int) string { return cs.Removed[i] })
	if !ok {
		return false, nil
	}
	insertedKeys, ok := normKeys(len(cs.Inserted), func(i int) string { return cs.Inserted[i].Key })
	if !ok {
		return false, nil
	}
	patchedKeys, ok := normKeys(len(cs.Patched), func(i int) string { return cs.Patched[i].Key })
	if !ok {
		return false, nil
	}

	for _, k := range removed {
		r, inParent := ev.finder.find(k)
		if !inParent {
			return true, fmt.Errorf("%w: removed key %q not in base", ErrNotDeltaNative, k)
		}
		ev.removedRows = append(ev.removedRows, r)
	}
	sort.Ints(ev.removedRows)
	removedRow := func(r int) bool {
		i := sort.SearchInts(ev.removedRows, r)
		return i < len(ev.removedRows) && ev.removedRows[i] == r
	}
	for i, k := range insertedKeys {
		if _, inParent := ev.finder.find(k); inParent {
			return true, fmt.Errorf("%w: inserted key %q already in base", ErrNotDeltaNative, k)
		}
		if len(cs.Inserted[i].Cells) != len(ev.schema) {
			return true, fmt.Errorf("%w: insert for key %q has %d cells, want %d", ErrNotDeltaNative, k, len(cs.Inserted[i].Cells), len(ev.schema))
		}
		if err := ev.evalInsert(k, cs.Inserted[i].Cells); err != nil {
			return true, err
		}
	}
	// Pre-size the per-column buckets: one exact allocation per touched
	// column instead of append-growth of the (fat) change records.
	counts := make([]int, len(ev.schema))
	for _, p := range cs.Patched {
		for _, ci := range p.Cols {
			if ci >= 0 && ci < len(counts) {
				counts[ci]++
			}
		}
	}
	for ci, n := range counts {
		if n > 0 && cap(ev.cols[ci]) < n {
			ev.cols[ci] = make([]bucketedChange, 0, n)
		}
	}
	for i, k := range patchedKeys {
		p := cs.Patched[i]
		if len(p.Cols) != len(p.Vals) {
			return true, fmt.Errorf("%w: patch for key %q has %d columns, %d values", ErrNotDeltaNative, k, len(p.Cols), len(p.Vals))
		}
		r, inParent := ev.finder.find(k)
		if !inParent {
			return true, fmt.Errorf("%w: patched key %q not in base", ErrNotDeltaNative, k)
		}
		if removedRow(r) {
			return true, fmt.Errorf("%w: key %q both removed and patched", ErrNotDeltaNative, k)
		}
		for j, ci := range p.Cols {
			if err := ev.evalCell(k, r, ci, p.Vals[j]); err != nil {
				return true, err
			}
		}
	}
	return true, nil
}

// finalize assembles the deterministic Result: removed keys in source row
// order, inserted keys in target (key-sorted) order, changes
// attribute-major (schema order) then source row order.
func (ev *deltaEval) finalize(parent *table.Table) (*Result, error) {
	res := &Result{Columns: ev.schema.Names()}
	sort.Ints(ev.removedRows)
	for i, r := range ev.removedRows {
		if i > 0 && ev.removedRows[i-1] == r {
			return nil, fmt.Errorf("%w: duplicate removal of row %d", ErrNotDeltaNative, r)
		}
		k, err := parent.KeyOf(r)
		if err != nil {
			return nil, err
		}
		res.Removed = append(res.Removed, k)
	}
	sort.Strings(ev.inserted)
	res.Inserted = ev.inserted
	total := 0
	for _, b := range ev.cols {
		total += len(b)
	}
	if total > 0 {
		res.Changes = make([]KeyedChange, 0, total)
	}
	for ci, b := range ev.cols {
		if len(b) == 0 {
			continue
		}
		if !ev.colSorted[ci] {
			sort.Slice(b, func(i, j int) bool { return b[i].row < b[j].row })
		}
		for _, c := range b {
			res.Changes = append(res.Changes, c.change)
		}
		res.ChangedAttrs = append(res.ChangedAttrs, ev.schema[ci].Name)
	}
	res.UpdateDistance = len(res.Changes)
	return res, nil
}

// changedValue is cellChanged with the new side supplied as a parsed Value
// instead of a column cell: same null semantics, same NaN-as-null rule, same
// absolute tolerance.
func changedValue(oldCol *table.Column, r int, nv table.Value, tol float64) bool {
	on, nn := oldCol.IsNull(r), nv.IsNull()
	if on || nn {
		return on != nn
	}
	if oldCol.Type.Numeric() && nv.Type().Numeric() {
		x, y := oldCol.Float(r), nv.Float()
		if xn, yn := math.IsNaN(x), math.IsNaN(y); xn || yn {
			return xn != yn
		}
		d := x - y
		if d < 0 {
			d = -d
		}
		return d > tol
	}
	return !oldCol.Value(r).Equal(nv)
}

// keyNormalizer re-encodes raw op keys (canonical CSV cell texts) into the
// table key space (Value.Str of the parsed cells), so delta-op keys compare
// equal to table.KeyOf keys even when the raw text carries whitespace or
// numeric decorations the cell parser normalizes away.
type keyNormalizer struct {
	n     int
	types []table.Type
	idx   []int // key column positions in the schema, key order
}

func newKeyNormalizer(t *table.Table, key []string) (*keyNormalizer, error) {
	kn := &keyNormalizer{n: len(key)}
	schema := t.Schema()
	for _, k := range key {
		c, err := t.Column(k)
		if err != nil {
			return nil, err
		}
		kn.types = append(kn.types, c.Type)
		for ci, f := range schema {
			if f.Name == k {
				kn.idx = append(kn.idx, ci)
				break
			}
		}
	}
	if len(kn.idx) != kn.n {
		return nil, fmt.Errorf("diff: key columns missing from schema")
	}
	return kn, nil
}

// keyFromCells encodes the key an inserted row's own key cells define —
// the key the row would actually carry in the child snapshot. Ops whose
// declared key disagrees with their cells are corrupt.
func (kn *keyNormalizer) keyFromCells(cells []string) (string, error) {
	parts := make([]string, kn.n)
	for i, ci := range kn.idx {
		v, err := csvio.ParseCell(cells[ci], kn.types[i])
		if err != nil {
			return "", fmt.Errorf("%w: key cell %q: %v", ErrNotDeltaNative, cells[ci], err)
		}
		parts[i] = v.Str()
	}
	return table.EncodeKey(parts), nil
}

func (kn *keyNormalizer) normalize(raw string) (string, error) {
	if kn.n == 1 {
		// Single-column keys are the raw cell verbatim: skip the
		// decode/encode round trip (this is the per-op hot path).
		v, err := csvio.ParseCell(raw, kn.types[0])
		if err != nil {
			return "", fmt.Errorf("%w: key %q: %v", ErrNotDeltaNative, raw, err)
		}
		return v.Str(), nil
	}
	parts, err := table.DecodeKey(raw, kn.n)
	if err != nil {
		return "", fmt.Errorf("%w: %v", ErrNotDeltaNative, err)
	}
	for i, p := range parts {
		v, err := csvio.ParseCell(p, kn.types[i])
		if err != nil {
			return "", fmt.Errorf("%w: key part %q: %v", ErrNotDeltaNative, p, err)
		}
		parts[i] = v.Str()
	}
	return table.EncodeKey(parts), nil
}

// normalizeStable is normalize plus the requirement that the raw encoding
// already was canonical (raw == normalized). Snapshot materialization needs
// it: a key whose raw text sorts differently from its parsed text would make
// the applied row order diverge from the canonical checkout order.
func (kn *keyNormalizer) normalizeStable(raw string) (string, error) {
	k, err := kn.normalize(raw)
	if err != nil {
		return "", err
	}
	if k != raw {
		return "", fmt.Errorf("%w: key text %q is not canonical (parses to %q)", ErrNotDeltaNative, raw, k)
	}
	return k, nil
}

// rowFinder resolves encoded keys to row indices of one table. It encodes
// every key once up front; when the table is key-sorted (the canonical
// layout every checkout has) lookups are binary searches with no map at all,
// otherwise it falls back to a hash index.
type rowFinder struct {
	keys   []string
	sorted bool
	index  map[string]int
}

func newRowFinder(t *table.Table, key []string) (*rowFinder, error) {
	n := t.NumRows()
	f := &rowFinder{keys: make([]string, n), sorted: true}
	for r := 0; r < n; r++ {
		k, err := t.KeyFor(r, key)
		if err != nil {
			return nil, err
		}
		f.keys[r] = k
		if r > 0 && f.keys[r-1] >= k {
			f.sorted = false
		}
	}
	if !f.sorted {
		f.index = make(map[string]int, n)
		for r, k := range f.keys {
			if prev, dup := f.index[k]; dup {
				return nil, fmt.Errorf("diff: duplicate key %q at rows %d and %d", k, prev, r)
			}
			f.index[k] = r
		}
	}
	return f, nil
}

func (f *rowFinder) find(k string) (int, bool) {
	if f.sorted {
		lo := sort.SearchStrings(f.keys, k)
		if lo < len(f.keys) && f.keys[lo] == k {
			return lo, true
		}
		return 0, false
	}
	r, ok := f.index[k]
	return r, ok
}
