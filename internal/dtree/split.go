package dtree

import (
	"sort"
	"sync"

	"charles/internal/predicate"
)

// Split search is the induction hot path: the engine builds one tree per
// (C, T, k) candidate, and the original implementation re-partitioned the
// node's rows once per candidate atom (O(rows × candidates) atom.Eval calls
// with a column lookup each). This implementation makes one pass over the
// node's rows per attribute to fill a (rank × label) histogram, then scores
// every candidate from integer counts: thresholds by sweeping ranks in
// ascending order with prefix sums, categories directly from their bucket.
// The same candidates are scored with the same Gini arithmetic in the same
// order, so the chosen tree is identical — only the cost changes.

// buildScratch holds the per-Build working memory, pooled on the Index so
// concurrent Builds sharing one Index reuse allocations.
type buildScratch struct {
	cnt     []int     // (rank, label) histogram, flat rank*nLabels
	seen    []int32   // per-rank epoch marker
	epoch   int32     // current epoch for seen
	present []int32   // node-present ranks (sorted per attribute)
	vals    []float64 // node-present distinct values (numeric attributes)
	tot     []int     // node label counts
	yes     []int     // running yes-side label counts
	no      []int     // derived no-side label counts
	sorter  rankSorter
}

// rankSorter sorts the present-rank scratch through a persistent pointer,
// so the sort.Sort interface conversion allocates nothing per node.
type rankSorter struct{ s []int32 }

func (r *rankSorter) Len() int           { return len(r.s) }
func (r *rankSorter) Less(i, j int) bool { return r.s[i] < r.s[j] }
func (r *rankSorter) Swap(i, j int)      { r.s[i], r.s[j] = r.s[j], r.s[i] }

var scratchPool = sync.Pool{New: func() any { return &buildScratch{} }}

func (b *builder) initScratch() {
	s := scratchPool.Get().(*buildScratch)
	maxRanks := 0
	for _, a := range b.attrs {
		if d := b.idx.cols[a].distinct(); d > maxRanks {
			maxRanks = d
		}
	}
	if cap(s.cnt) < maxRanks*b.nLabels {
		s.cnt = make([]int, maxRanks*b.nLabels)
	}
	if cap(s.seen) < maxRanks {
		s.seen = make([]int32, maxRanks)
		s.epoch = 0
	}
	s.seen = s.seen[:cap(s.seen)]
	s.tot = grown(s.tot, b.nLabels)
	s.yes = grown(s.yes, b.nLabels)
	s.no = grown(s.no, b.nLabels)
	b.scratch = s
}

func (b *builder) releaseScratch() {
	scratchPool.Put(b.scratch)
	b.scratch = nil
}

func grown(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

// bestSplit returns the candidate atom with the largest Gini impurity
// decrease over the node's rows (ties keep the earliest candidate in
// attribute order, then candidate order — matching the historical scan).
func (b *builder) bestSplit(rows []int) (predicate.Atom, float64, error) {
	s := b.scratch
	L := b.nLabels
	for l := range s.tot {
		s.tot[l] = 0
	}
	for _, r := range rows {
		s.tot[b.labels[r]]++
	}
	base := giniCounts(s.tot, len(rows))
	n := float64(len(rows))

	var best predicate.Atom
	bestGain := -1.0
	for _, attr := range b.attrs {
		ia := b.idx.cols[attr]

		// One pass: histogram the node's rows by (rank, label).
		s.epoch++
		if s.epoch == 0 { // epoch wrapped: re-zero the markers
			for i := range s.seen {
				s.seen[i] = 0
			}
			s.epoch = 1
		}
		s.present = s.present[:0]
		for _, r := range rows {
			rk := ia.ranks[r]
			if rk < 0 {
				continue // nulls match no atom; they always fall to the no side
			}
			if s.seen[rk] != s.epoch {
				s.seen[rk] = s.epoch
				s.present = append(s.present, rk)
				for l := 0; l < L; l++ {
					s.cnt[int(rk)*L+l] = 0
				}
			}
			s.cnt[int(rk)*L+b.labels[r]]++
		}
		s.sorter.s = s.present
		sort.Sort(&s.sorter)

		if ia.numeric {
			// Candidate thresholds between adjacent present values, scored
			// by sweeping ranks in ascending order with prefix sums.
			s.vals = s.vals[:0]
			for _, rk := range s.present {
				s.vals = append(s.vals, ia.vals[rk])
			}
			boundaries := boundaryPairs(s.vals)
			for l := 0; l < L; l++ {
				s.yes[l] = 0
			}
			yesN, pi := 0, 0
			for _, pr := range boundaries {
				lo, hi := pr[0], pr[1]
				for pi < len(s.present) && ia.vals[s.present[pi]] <= lo {
					rk := int(s.present[pi])
					for l := 0; l < L; l++ {
						c := s.cnt[rk*L+l]
						s.yes[l] += c
						yesN += c
					}
					pi++
				}
				noN := len(rows) - yesN
				if yesN == 0 || noN == 0 {
					continue
				}
				for l := 0; l < L; l++ {
					s.no[l] = s.tot[l] - s.yes[l]
				}
				g := base - float64(yesN)/n*giniCounts(s.yes, yesN) - float64(noN)/n*giniCounts(s.no, noN)
				if g > bestGain {
					bestGain = g
					best = predicate.NumAtom(attr, predicate.Lt, NiceThreshold(lo, hi))
				}
			}
			continue
		}

		// Categorical: one-vs-rest equality per present value, in dictionary
		// (= sorted string) order.
		for _, rk := range s.present {
			yesN := 0
			for l := 0; l < L; l++ {
				c := s.cnt[int(rk)*L+l]
				s.yes[l] = c
				yesN += c
			}
			noN := len(rows) - yesN
			if yesN == 0 || noN == 0 {
				continue
			}
			for l := 0; l < L; l++ {
				s.no[l] = s.tot[l] - s.yes[l]
			}
			g := base - float64(yesN)/n*giniCounts(s.yes, yesN) - float64(noN)/n*giniCounts(s.no, noN)
			if g > bestGain {
				bestGain = g
				best = predicate.StrAtom(attr, predicate.Eq, ia.dict[rk])
			}
		}
	}
	if bestGain < 0 {
		return predicate.Atom{}, 0, nil
	}
	return best, bestGain, nil
}

// splitRows partitions rows by the split atom using the index (null and
// non-finite cells never match, like Atom.Eval).
func (b *builder) splitRows(a predicate.Atom, rows []int) (yes, no []int, err error) {
	ia, ok := b.idx.cols[a.Attr]
	if !ok {
		// Unreachable for atoms produced by bestSplit; fall back for safety.
		for _, r := range rows {
			m, err := a.Eval(b.t, r)
			if err != nil {
				return nil, nil, err
			}
			if m {
				yes = append(yes, r)
			} else {
				no = append(no, r)
			}
		}
		return yes, no, nil
	}
	// One backing array for both sides (two allocations per split instead
	// of append-doubling four slices).
	buf := make([]int, len(rows))
	yes, no = buf[:0:len(rows)], nil
	ni := len(rows)
	if a.Numeric {
		for _, r := range rows {
			if rk := ia.ranks[r]; rk >= 0 && ia.vals[rk] < a.Num {
				yes = append(yes, r)
			} else {
				ni--
				buf[ni] = r
			}
		}
	} else {
		code := int32(-2)
		if c, present := findCode(ia.dict, a.Str); present {
			code = c
		}
		for _, r := range rows {
			if rk := ia.ranks[r]; rk >= 0 && rk == code {
				yes = append(yes, r)
			} else {
				ni--
				buf[ni] = r
			}
		}
	}
	// The no side was filled back-to-front; restore row order in place.
	no = buf[ni:]
	for i, j := 0, len(no)-1; i < j; i, j = i+1, j-1 {
		no[i], no[j] = no[j], no[i]
	}
	return yes, no, nil
}

func findCode(dict []string, v string) (int32, bool) {
	i := sort.SearchStrings(dict, v)
	if i < len(dict) && dict[i] == v {
		return int32(i), true
	}
	return 0, false
}

// giniCounts computes the Gini impurity from label counts (same arithmetic,
// in the same label order, as gini over the row subset).
func giniCounts(counts []int, total int) float64 {
	if total == 0 {
		return 0
	}
	n := float64(total)
	g := 1.0
	for _, c := range counts {
		if c == 0 {
			continue
		}
		p := float64(c) / n
		g -= p * p
	}
	return g
}
