package dtree

import (
	"math/rand"
	"sort"
	"testing"

	"charles/internal/predicate"
	"charles/internal/table"
)

// naiveBestSplit is the historical reference implementation: enumerate
// candidate atoms per attribute, re-partition the rows per candidate, and
// keep the largest Gini gain. The histogram-based bestSplit must select the
// same atom with the same gain.
func naiveBestSplit(t *table.Table, attrs []string, labels []int, rows []int) (predicate.Atom, float64, error) {
	base := gini(labels, rows)
	var best predicate.Atom
	bestGain := -1.0
	for _, attr := range attrs {
		col := t.MustColumn(attr)
		var cands []predicate.Atom
		if col.Type.Numeric() {
			vals := map[float64]bool{}
			for _, r := range rows {
				if col.IsNull(r) {
					continue
				}
				vals[col.Float(r)] = true
			}
			distinct := make([]float64, 0, len(vals))
			for v := range vals {
				distinct = append(distinct, v)
			}
			sort.Float64s(distinct)
			for _, p := range boundaryPairs(distinct) {
				cands = append(cands, predicate.NumAtom(col.Name, predicate.Lt, NiceThreshold(p[0], p[1])))
			}
		} else {
			seen := map[string]bool{}
			for _, r := range rows {
				if col.IsNull(r) {
					continue
				}
				v := col.Str(r)
				if !seen[v] {
					seen[v] = true
					cands = append(cands, predicate.StrAtom(col.Name, predicate.Eq, v))
				}
			}
			sort.Slice(cands, func(i, j int) bool { return cands[i].Str < cands[j].Str })
		}
		for _, atom := range cands {
			var yes, no []int
			for _, r := range rows {
				ok, err := atom.Eval(t, r)
				if err != nil {
					return predicate.Atom{}, 0, err
				}
				if ok {
					yes = append(yes, r)
				} else {
					no = append(no, r)
				}
			}
			if len(yes) == 0 || len(no) == 0 {
				continue
			}
			n := float64(len(rows))
			g := base - float64(len(yes))/n*gini(labels, yes) - float64(len(no))/n*gini(labels, no)
			if g > bestGain {
				bestGain, best = g, atom
			}
		}
	}
	if bestGain < 0 {
		return predicate.Atom{}, 0, nil
	}
	return best, bestGain, nil
}

func randomSplitTable(rng *rand.Rand, n int) *table.Table {
	t := table.MustNew(table.Schema{
		{Name: "num", Type: table.Float},
		{Name: "cnt", Type: table.Int},
		{Name: "cat", Type: table.String},
	})
	cats := []string{"a", "b", "c", "d", "e"}
	for r := 0; r < n; r++ {
		vals := []table.Value{
			table.F(float64(rng.Intn(40)) / 4),
			table.I(int64(rng.Intn(6))),
			table.S(cats[rng.Intn(len(cats))]),
		}
		for c := range vals {
			if rng.Float64() < 0.08 {
				vals[c] = table.Null(t.Schema()[c].Type)
			}
		}
		t.MustAppendRow(vals...)
	}
	return t
}

// TestHistogramSplitMatchesNaive locks the histogram sweep to the reference
// scan: same winning atom, same gain, on random tables with nulls and ties.
func TestHistogramSplitMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	attrs := []string{"num", "cnt", "cat"}
	for trial := 0; trial < 40; trial++ {
		n := 10 + rng.Intn(150)
		tbl := randomSplitTable(rng, n)
		labels := make([]int, n)
		nLabels := 2 + rng.Intn(3)
		for i := range labels {
			labels[i] = rng.Intn(nLabels)
		}
		idx, err := NewIndex(tbl, attrs)
		if err != nil {
			t.Fatal(err)
		}
		// Random row subsets simulate interior tree nodes.
		for sub := 0; sub < 5; sub++ {
			var rows []int
			for r := 0; r < n; r++ {
				if sub == 0 || rng.Float64() < 0.6 {
					rows = append(rows, r)
				}
			}
			if len(rows) == 0 {
				continue
			}
			b := &builder{t: tbl, attrs: attrs, labels: labels, opts: Options{}.withDefaults(), idx: idx, nLabels: nLabels}
			b.initScratch()
			gotAtom, gotGain, err := b.bestSplit(rows)
			b.releaseScratch()
			if err != nil {
				t.Fatal(err)
			}
			wantAtom, wantGain, err := naiveBestSplit(tbl, attrs, labels, rows)
			if err != nil {
				t.Fatal(err)
			}
			if gotAtom.String() != wantAtom.String() || gotGain != wantGain {
				t.Fatalf("trial %d sub %d: histogram (%v, %v) != naive (%v, %v)",
					trial, sub, gotAtom, gotGain, wantAtom, wantGain)
			}
		}
	}
}

// TestBuildWithSharedIndexMatchesFresh ensures a Build through a shared
// Index produces the identical tree as one that derives its own.
func TestBuildWithSharedIndexMatchesFresh(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	attrs := []string{"num", "cnt", "cat"}
	for trial := 0; trial < 10; trial++ {
		n := 30 + rng.Intn(100)
		tbl := randomSplitTable(rng, n)
		labels := make([]int, n)
		for i := range labels {
			labels[i] = rng.Intn(3)
		}
		idx, err := NewIndex(tbl, attrs)
		if err != nil {
			t.Fatal(err)
		}
		shared, err := Build(tbl, attrs, labels, nil, Options{MaxDepth: 4, Index: idx})
		if err != nil {
			t.Fatal(err)
		}
		fresh, err := Build(tbl, attrs, labels, nil, Options{MaxDepth: 4})
		if err != nil {
			t.Fatal(err)
		}
		sl, fl := shared.Leaves(), fresh.Leaves()
		if len(sl) != len(fl) {
			t.Fatalf("trial %d: %d leaves vs %d", trial, len(sl), len(fl))
		}
		for i := range sl {
			if !sl[i].Pred.Equal(fl[i].Pred) || sl[i].Label != fl[i].Label || len(sl[i].Rows) != len(fl[i].Rows) {
				t.Fatalf("trial %d leaf %d: %v (%d) vs %v (%d)", trial, i, sl[i].Pred, sl[i].Label, fl[i].Pred, fl[i].Label)
			}
		}
	}
}
