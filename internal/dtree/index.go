package dtree

import (
	"fmt"
	"sort"

	"charles/internal/table"
)

// Index precomputes, once per table, everything candidate enumeration needs
// per attribute: each row's rank in the attribute's sorted distinct values
// (numeric) or its dictionary code (categorical). The engine builds one
// Index per run and shares it across every Build call — thousands per run —
// instead of re-deriving distinct values and re-evaluating atoms row by row
// per (C, T, k) candidate. An Index is immutable after construction and safe
// for concurrent Builds.
type Index struct {
	t    *table.Table
	rows int
	cols map[string]*indexedAttr
}

// indexedAttr is the per-attribute precomputation.
type indexedAttr struct {
	name    string
	numeric bool
	// ranks[r] identifies row r's value: an index into vals (numeric) or
	// dict (categorical), or -1 for null. Rank order equals sorted value
	// order in both cases (dictionaries are sorted).
	ranks []int32
	vals  []float64 // sorted distinct values (numeric only)
	dict  []string  // sorted distinct values (categorical only)
}

// distinct returns the number of rank slots for the attribute.
func (ia *indexedAttr) distinct() int {
	if ia.numeric {
		return len(ia.vals)
	}
	return len(ia.dict)
}

// NewIndex builds the split index for the given attributes of t.
func NewIndex(t *table.Table, attrs []string) (*Index, error) {
	ix := &Index{t: t, rows: t.NumRows(), cols: map[string]*indexedAttr{}}
	for _, a := range attrs {
		if _, ok := ix.cols[a]; ok {
			continue
		}
		col, err := t.Column(a)
		if err != nil {
			return nil, fmt.Errorf("dtree: unknown attribute %q", a)
		}
		ia := &indexedAttr{name: a, numeric: col.Type.Numeric()}
		nulls := col.Nulls()
		if ia.numeric {
			vals := col.FloatView()
			distinct := make([]float64, 0, len(vals))
			for r, v := range vals {
				// NaN cells (null or stored non-finite) rank -1: like nulls,
				// they can never satisfy a threshold atom.
				if !nulls[r] && v == v {
					distinct = append(distinct, v)
				}
			}
			sort.Float64s(distinct)
			distinct = dedupFloats(distinct)
			ia.vals = distinct
			ia.ranks = make([]int32, len(vals))
			for r, v := range vals {
				if nulls[r] || v != v {
					ia.ranks[r] = -1
					continue
				}
				ia.ranks[r] = int32(sort.SearchFloat64s(distinct, v))
			}
		} else {
			codes, dict := col.Codes()
			ia.dict = dict
			ia.ranks = make([]int32, len(codes))
			for r, c := range codes {
				if c == table.NullCode {
					ia.ranks[r] = -1
				} else {
					ia.ranks[r] = int32(c)
				}
			}
		}
		ix.cols[a] = ia
	}
	return ix, nil
}

// Covers reports whether the index was built over t and includes every
// attribute in attrs — callers sharing a prebuilt index across runs (the
// engine's pair context) use it to detect pools the index cannot serve.
func (ix *Index) Covers(t *table.Table, attrs []string) bool {
	return ix.covers(t, attrs)
}

// covers reports whether the index was built over t and includes every
// attribute in attrs.
func (ix *Index) covers(t *table.Table, attrs []string) bool {
	if ix == nil || ix.t != t {
		return false
	}
	for _, a := range attrs {
		if _, ok := ix.cols[a]; !ok {
			return false
		}
	}
	return true
}

// dedupFloats removes adjacent duplicates from a sorted slice, in place.
func dedupFloats(s []float64) []float64 {
	if len(s) == 0 {
		return s
	}
	out := s[:1]
	for _, v := range s[1:] {
		if v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	return out
}
