package dtree

import (
	"math/rand"
	"testing"

	"charles/internal/predicate"
	"charles/internal/table"
)

// labeledTable builds a table whose label is determined by (edu, exp):
// PhD → 0, MS & exp ≥ 3 → 1, MS & exp < 3 → 2, BS → 3.
func labeledTable(t *testing.T, n int, seed int64) (*table.Table, []int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	tbl := table.MustNew(table.Schema{
		{Name: "edu", Type: table.String},
		{Name: "exp", Type: table.Int},
		{Name: "noise", Type: table.Float},
	})
	labels := make([]int, 0, n)
	edus := []string{"PhD", "MS", "BS"}
	for i := 0; i < n; i++ {
		edu := edus[rng.Intn(3)]
		exp := int64(rng.Intn(10))
		var label int
		switch {
		case edu == "PhD":
			label = 0
		case edu == "MS" && exp >= 3:
			label = 1
		case edu == "MS":
			label = 2
		default:
			label = 3
		}
		tbl.MustAppendRow(table.S(edu), table.I(exp), table.F(rng.Float64()))
		labels = append(labels, label)
	}
	return tbl, labels
}

func TestBuildRecoversPartitioning(t *testing.T) {
	tbl, labels := labeledTable(t, 300, 1)
	tree, err := Build(tbl, []string{"edu", "exp"}, labels, nil, Options{MaxDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Every row must be predicted with its true label (the partitioning is
	// perfectly expressible at depth ≤ 4).
	for r := 0; r < tbl.NumRows(); r++ {
		got, err := tree.Predict(tbl, r)
		if err != nil {
			t.Fatal(err)
		}
		if got != labels[r] {
			t.Fatalf("row %d predicted %d, want %d", r, got, labels[r])
		}
	}
	leaves := tree.Leaves()
	if len(leaves) < 4 {
		t.Errorf("leaves = %d, want ≥ 4", len(leaves))
	}
	// Leaves ordered by size descending.
	for i := 1; i < len(leaves); i++ {
		if len(leaves[i].Rows) > len(leaves[i-1].Rows) {
			t.Error("leaves not sorted by row count")
		}
	}
}

func TestLeafPredicatesSelectTheirRows(t *testing.T) {
	tbl, labels := labeledTable(t, 200, 2)
	tree, err := Build(tbl, []string{"edu", "exp"}, labels, nil, Options{MaxDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, leaf := range tree.Leaves() {
		mask, err := leaf.Pred.Mask(tbl)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range leaf.Rows {
			if !mask[r] {
				t.Fatalf("leaf predicate %s does not cover its own row %d", leaf.Pred, r)
			}
			if seen[r] {
				t.Fatalf("row %d in two leaves", r)
			}
			seen[r] = true
		}
	}
	if len(seen) != tbl.NumRows() {
		t.Errorf("leaves cover %d rows, want %d", len(seen), tbl.NumRows())
	}
}

func TestPureLabelsGiveSingleLeaf(t *testing.T) {
	tbl, _ := labeledTable(t, 50, 3)
	labels := make([]int, tbl.NumRows())
	tree, err := Build(tbl, []string{"edu", "exp"}, labels, nil, Options{MaxDepth: 3})
	if err != nil {
		t.Fatal(err)
	}
	leaves := tree.Leaves()
	if len(leaves) != 1 || !leaves[0].Pred.IsTrue() {
		t.Errorf("pure labels should give a single TRUE leaf, got %d", len(leaves))
	}
	if tree.Depth() != 0 {
		t.Errorf("depth = %d", tree.Depth())
	}
}

func TestMaxDepthRespected(t *testing.T) {
	tbl, labels := labeledTable(t, 300, 4)
	tree, err := Build(tbl, []string{"edu", "exp"}, labels, nil, Options{MaxDepth: 1})
	if err != nil {
		t.Fatal(err)
	}
	if tree.Depth() > 1 {
		t.Errorf("depth = %d, want ≤ 1", tree.Depth())
	}
	for _, leaf := range tree.Leaves() {
		if leaf.Pred.Complexity() > 1 {
			t.Errorf("leaf predicate too complex: %s", leaf.Pred)
		}
	}
}

func TestMinLeafRespected(t *testing.T) {
	tbl, labels := labeledTable(t, 100, 5)
	tree, err := Build(tbl, []string{"edu", "exp"}, labels, nil, Options{MaxDepth: 4, MinLeaf: 20})
	if err != nil {
		t.Fatal(err)
	}
	for _, leaf := range tree.Leaves() {
		if len(leaf.Rows) < 20 {
			t.Errorf("leaf with %d rows < MinLeaf 20", len(leaf.Rows))
		}
	}
}

func TestBuildErrors(t *testing.T) {
	tbl, labels := labeledTable(t, 10, 6)
	if _, err := Build(tbl, []string{"ghost"}, labels, nil, Options{}); err == nil {
		t.Error("unknown attribute accepted")
	}
	if _, err := Build(tbl, []string{"edu"}, labels[:3], nil, Options{}); err == nil {
		t.Error("label length mismatch accepted")
	}
	if _, err := Build(tbl, []string{"edu"}, labels, []int{}, Options{}); err == nil {
		t.Error("empty row set accepted")
	}
}

func TestBuildOnRowSubset(t *testing.T) {
	tbl, labels := labeledTable(t, 100, 7)
	rows := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	tree, err := Build(tbl, []string{"edu", "exp"}, labels, rows, Options{MaxDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, leaf := range tree.Leaves() {
		total += len(leaf.Rows)
	}
	if total != len(rows) {
		t.Errorf("subset leaves cover %d rows, want %d", total, len(rows))
	}
}

func TestNumericSplitsOnly(t *testing.T) {
	tbl := table.MustNew(table.Schema{{Name: "x", Type: table.Float}})
	labels := []int{0, 0, 1, 1}
	for _, v := range []float64{1, 2, 10, 11} {
		tbl.MustAppendRow(table.F(v))
	}
	tree, err := Build(tbl, []string{"x"}, labels, nil, Options{MaxDepth: 2})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 4; r++ {
		got, _ := tree.Predict(tbl, r)
		if got != labels[r] {
			t.Errorf("row %d predicted %d", r, got)
		}
	}
	// The split threshold should be a nice value strictly separating 2 and 10.
	leaves := tree.Leaves()
	for _, leaf := range leaves {
		for _, a := range leaf.Pred.Atoms {
			if a.Numeric && (a.Num <= 2 || a.Num > 10) {
				t.Errorf("threshold %v outside (2, 10]", a.Num)
			}
		}
	}
}

func TestNiceThreshold(t *testing.T) {
	cases := []struct {
		lo, hi float64
	}{
		{1, 4}, {2, 3}, {130000, 140000}, {0.01, 0.02}, {-5, -2}, {99, 101},
	}
	for _, c := range cases {
		got := NiceThreshold(c.lo, c.hi)
		if !(c.lo < got && got <= c.hi) {
			t.Errorf("NiceThreshold(%v, %v) = %v not in (lo, hi]", c.lo, c.hi, got)
		}
	}
	// Specific niceness: (1, 4] should give 3 (midpoint 2.5 → 1 sig digit).
	if got := NiceThreshold(1, 4); got != 3 {
		t.Errorf("NiceThreshold(1,4) = %v, want 3", got)
	}
	if got := NiceThreshold(23.1, 26.9); got != 25 {
		t.Errorf("NiceThreshold(23.1,26.9) = %v, want 25", got)
	}
	// Degenerate interval.
	if got := NiceThreshold(5, 5); got != 5 {
		t.Errorf("degenerate = %v", got)
	}
}

func TestNegateRoundTrip(t *testing.T) {
	tbl, _ := labeledTable(t, 20, 8)
	atoms := []predicate.Atom{
		predicate.StrAtom("edu", predicate.Eq, "MS"),
		predicate.NumAtom("exp", predicate.Lt, 3),
	}
	for _, a := range atoms {
		n := negate(a)
		for r := 0; r < tbl.NumRows(); r++ {
			av, err := a.Eval(tbl, r)
			if err != nil {
				t.Fatal(err)
			}
			nv, err := n.Eval(tbl, r)
			if err != nil {
				t.Fatal(err)
			}
			if av == nv {
				t.Fatalf("negate(%s) not complementary at row %d", a, r)
			}
		}
	}
}

func TestNiceThresholdExactAtLargeMagnitudes(t *testing.T) {
	// 160000..210000 must yield exactly 200000, not 199999.99999999997.
	if got := NiceThreshold(160000, 210000); got != 200000 {
		t.Errorf("NiceThreshold(160000, 210000) = %v, want exactly 200000", got)
	}
}

func TestHighCardinalityNumericCapped(t *testing.T) {
	// 5000 distinct values must produce a bounded candidate set, and the
	// tree must still find a usable split.
	tbl := table.MustNew(table.Schema{{Name: "x", Type: table.Float}})
	labels := make([]int, 5000)
	for i := 0; i < 5000; i++ {
		tbl.MustAppendRow(table.F(float64(i) + 0.5))
		if i >= 2500 {
			labels[i] = 1
		}
	}
	idx, err := NewIndex(tbl, []string{"x"})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(boundaryPairs(idx.cols["x"].vals)); got > maxNumericThresholds {
		t.Fatalf("candidates = %d, want ≤ %d", got, maxNumericThresholds)
	}
	tree, err := Build(tbl, []string{"x"}, labels, nil, Options{MaxDepth: 2})
	if err != nil {
		t.Fatal(err)
	}
	wrong := 0
	for r := 0; r < 5000; r++ {
		got, _ := tree.Predict(tbl, r)
		if got != labels[r] {
			wrong++
		}
	}
	// Quantile thresholds land near the class boundary; a few percent
	// misclassified at worst.
	if wrong > 250 {
		t.Errorf("%d/5000 rows misclassified with capped thresholds", wrong)
	}
}

func TestBoundaryPairsSmallAndLarge(t *testing.T) {
	small := boundaryPairs([]float64{1, 2, 3})
	if len(small) != 2 || small[0] != [2]float64{1, 2} {
		t.Errorf("small boundaries = %v", small)
	}
	if boundaryPairs([]float64{7}) != nil {
		t.Error("single value should have no boundaries")
	}
	big := make([]float64, 1000)
	for i := range big {
		big[i] = float64(i)
	}
	pairs := boundaryPairs(big)
	if len(pairs) == 0 || len(pairs) > maxNumericThresholds {
		t.Errorf("large boundaries = %d", len(pairs))
	}
	// Strictly increasing, adjacent values.
	for i, p := range pairs {
		if p[1] != p[0]+1 {
			t.Errorf("pair %d not adjacent: %v", i, p)
		}
		if i > 0 && p[0] <= pairs[i-1][0] {
			t.Error("pairs not increasing")
		}
	}
}
