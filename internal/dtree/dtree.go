// Package dtree implements a small CART-style decision-tree classifier used
// by ChARLES to convert k-means cluster assignments into human-readable
// conditions: the tree is trained over the *condition attributes* with the
// cluster id as the class label, and each leaf then yields a conjunctive
// predicate describing one data partition.
//
// Splits are binary: categorical attributes split one-vs-rest (attr = v),
// numeric attributes split on thresholds (attr < t) chosen at "nice" values
// between adjacent distinct data points (25, not 23.796), supporting the
// paper's normality preference.
//
// Callers building many trees over one table (the engine: one per
// candidate summary) share an Index — per-attribute sorted values and
// dictionary codes precomputed once — via Options.Index; split search then
// scores candidates from label histograms instead of re-partitioning the
// node's rows per candidate atom.
package dtree

import (
	"fmt"
	"math"
	"sort"

	"charles/internal/predicate"
	"charles/internal/table"
)

// Options configure tree induction.
type Options struct {
	// MaxDepth bounds the number of atoms in any leaf predicate; it
	// corresponds to the user parameter c (max condition attributes).
	MaxDepth int
	// MinLeaf is the minimum rows per leaf (default 1).
	MinLeaf int
	// MinGain is the minimum Gini impurity decrease to accept a split.
	MinGain float64
	// Index is an optional precomputed split index covering the table and
	// attributes (see NewIndex). Callers that Build many trees over one
	// table — the engine builds one per (C, T, k) candidate — share a
	// single Index; when nil (or not covering), Build derives one itself.
	Index *Index
}

func (o Options) withDefaults() Options {
	if o.MaxDepth <= 0 {
		o.MaxDepth = 3
	}
	if o.MinLeaf <= 0 {
		o.MinLeaf = 1
	}
	if o.MinGain <= 0 {
		o.MinGain = 1e-9
	}
	return o
}

// Tree is a fitted decision tree over a fixed table.
type Tree struct {
	root  *node
	attrs []string
}

type node struct {
	// Internal nodes:
	split predicate.Atom
	yes   *node // rows where split holds
	no    *node

	// Leaves:
	leaf  bool
	label int
	rows  []int
}

// Leaf describes one induced partition.
type Leaf struct {
	Pred  predicate.Predicate // conjunction from root to leaf
	Label int                 // majority cluster id
	Rows  []int               // training rows reaching the leaf
}

// Build fits a tree on rows `rows` of t (nil = all rows), using only the
// given attributes for splits and labels[r] as the class of row r.
func Build(t *table.Table, attrs []string, labels []int, rows []int, opts Options) (*Tree, error) {
	if len(labels) != t.NumRows() {
		return nil, fmt.Errorf("dtree: %d labels for %d rows", len(labels), t.NumRows())
	}
	for _, a := range attrs {
		if !t.HasColumn(a) {
			return nil, fmt.Errorf("dtree: unknown attribute %q", a)
		}
	}
	if rows == nil {
		rows = make([]int, t.NumRows())
		for i := range rows {
			rows[i] = i
		}
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("dtree: no rows")
	}
	opts = opts.withDefaults()
	idx := opts.Index
	if !idx.covers(t, attrs) {
		var err error
		idx, err = NewIndex(t, attrs)
		if err != nil {
			return nil, err
		}
	}
	nLabels := 0
	for _, l := range labels {
		if l >= nLabels {
			nLabels = l + 1
		}
	}
	b := &builder{t: t, attrs: attrs, labels: labels, opts: opts, idx: idx, nLabels: nLabels}
	b.initScratch()
	root, err := b.grow(rows, 0)
	b.releaseScratch()
	if err != nil {
		return nil, err
	}
	return &Tree{root: root, attrs: attrs}, nil
}

type builder struct {
	t       *table.Table
	attrs   []string
	labels  []int
	opts    Options
	idx     *Index
	nLabels int
	scratch *buildScratch
}

func (b *builder) grow(rows []int, depth int) (*node, error) {
	if depth >= b.opts.MaxDepth || len(rows) < 2*b.opts.MinLeaf || pure(b.labels, rows) {
		return b.makeLeaf(rows), nil
	}
	atom, gain, err := b.bestSplit(rows)
	if err != nil {
		return nil, err
	}
	if gain < b.opts.MinGain {
		return b.makeLeaf(rows), nil
	}
	yesRows, noRows, err := b.splitRows(atom, rows)
	if err != nil {
		return nil, err
	}
	if len(yesRows) < b.opts.MinLeaf || len(noRows) < b.opts.MinLeaf {
		return b.makeLeaf(rows), nil
	}
	yes, err := b.grow(yesRows, depth+1)
	if err != nil {
		return nil, err
	}
	no, err := b.grow(noRows, depth+1)
	if err != nil {
		return nil, err
	}
	return &node{split: atom, yes: yes, no: no}, nil
}

func (b *builder) makeLeaf(rows []int) *node {
	return &node{leaf: true, label: majority(b.labels, rows), rows: rows}
}

// maxNumericThresholds caps the split candidates per numeric attribute.
// A high-cardinality column (salaries over 50k rows) would otherwise
// contribute tens of thousands of candidates; quantile-spaced boundaries
// preserve the resolution that matters (where the data mass is) at a fixed
// budget.
const maxNumericThresholds = 32

// boundaryPairs returns adjacent-value pairs to place thresholds between.
// All gaps are used when the column has few distinct values; above the cap,
// quantile-spaced gaps are selected (deduplicated, order preserved).
func boundaryPairs(distinct []float64) [][2]float64 {
	gaps := len(distinct) - 1
	if gaps <= 0 {
		return nil
	}
	if gaps <= maxNumericThresholds {
		out := make([][2]float64, 0, gaps)
		for i := 0; i+1 < len(distinct); i++ {
			out = append(out, [2]float64{distinct[i], distinct[i+1]})
		}
		return out
	}
	out := make([][2]float64, 0, maxNumericThresholds)
	prev := -1
	for j := 0; j < maxNumericThresholds; j++ {
		i := (j + 1) * gaps / (maxNumericThresholds + 1)
		if i == prev || i+1 >= len(distinct) {
			continue
		}
		prev = i
		out = append(out, [2]float64{distinct[i], distinct[i+1]})
	}
	return out
}

// Predict returns the label the tree assigns to row r of t.
func (tr *Tree) Predict(t *table.Table, r int) (int, error) {
	n := tr.root
	for !n.leaf {
		ok, err := n.split.Eval(t, r)
		if err != nil {
			return 0, err
		}
		if ok {
			n = n.yes
		} else {
			n = n.no
		}
	}
	return n.label, nil
}

// Leaves returns every leaf with its root-to-leaf predicate (normalized).
// Leaves are ordered by descending row count, so the dominant partition
// comes first.
func (tr *Tree) Leaves() []Leaf {
	var out []Leaf
	var walk func(n *node, p predicate.Predicate)
	walk = func(n *node, p predicate.Predicate) {
		if n.leaf {
			out = append(out, Leaf{Pred: p.Normalize(), Label: n.label, Rows: n.rows})
			return
		}
		walk(n.yes, p.And(n.split))
		walk(n.no, p.And(negate(n.split)))
	}
	walk(tr.root, predicate.True())
	sort.SliceStable(out, func(i, j int) bool { return len(out[i].Rows) > len(out[j].Rows) })
	return out
}

// Depth returns the maximum depth of the tree (0 for a single leaf).
func (tr *Tree) Depth() int {
	var d func(n *node) int
	d = func(n *node) int {
		if n.leaf {
			return 0
		}
		dy, dn := d(n.yes), d(n.no)
		if dy > dn {
			return dy + 1
		}
		return dn + 1
	}
	return d(tr.root)
}

// negate inverts an atom: =↔≠, <↔≥.
func negate(a predicate.Atom) predicate.Atom {
	n := a
	switch a.Op {
	case predicate.Eq:
		n.Op = predicate.Ne
	case predicate.Ne:
		n.Op = predicate.Eq
	case predicate.Lt:
		n.Op = predicate.Ge
	case predicate.Ge:
		n.Op = predicate.Lt
	}
	return n
}

// pure reports whether all rows share one label.
func pure(labels []int, rows []int) bool {
	if len(rows) == 0 {
		return true
	}
	first := labels[rows[0]]
	for _, r := range rows[1:] {
		if labels[r] != first {
			return false
		}
	}
	return true
}

// labelCounts tallies labels over rows into a dense slice, so that every
// aggregation below iterates in label order — map iteration would make
// floating-point sums order-dependent and the tree nondeterministic across
// runs when two splits tie exactly.
func labelCounts(labels []int, rows []int) []int {
	maxL := 0
	for _, r := range rows {
		if labels[r] > maxL {
			maxL = labels[r]
		}
	}
	counts := make([]int, maxL+1)
	for _, r := range rows {
		counts[labels[r]]++
	}
	return counts
}

// majority returns the most frequent label (smallest id wins ties).
func majority(labels []int, rows []int) int {
	if len(rows) == 0 {
		return 0
	}
	counts := labelCounts(labels, rows)
	best, bestN := 0, -1
	for l, n := range counts {
		if n > bestN {
			best, bestN = l, n
		}
	}
	return best
}

// gini computes the Gini impurity of the label distribution over rows.
func gini(labels []int, rows []int) float64 {
	if len(rows) == 0 {
		return 0
	}
	counts := labelCounts(labels, rows)
	n := float64(len(rows))
	g := 1.0
	for _, c := range counts {
		if c == 0 {
			continue
		}
		p := float64(c) / n
		g -= p * p
	}
	return g
}

// NiceThreshold picks a human-friendly split point in the half-open interval
// (lo, hi]: the roundest value that still separates lo from hi under the
// predicate `x < threshold`. It prefers integers and short decimals; when no
// round value fits, it falls back to hi (which always separates).
func NiceThreshold(lo, hi float64) float64 {
	if !(lo < hi) {
		return hi
	}
	mid := (lo + hi) / 2
	// Candidates from coarsest significant rounding of the midpoint.
	for digits := 1; digits <= 12; digits++ {
		r := roundSig(mid, digits)
		if lo < r && r <= hi {
			return r
		}
		// Also try the value just above lo at this granularity.
		step := math.Pow(10, math.Floor(math.Log10(math.Max(math.Abs(mid), 1e-12)))-float64(digits-1))
		up := math.Ceil(lo/step) * step
		if up == lo {
			up += step
		}
		if lo < up && up <= hi {
			return up
		}
	}
	return hi
}

// roundSig rounds to significant digits, dividing by exact positive powers
// of ten for large magnitudes (10⁻⁵ is inexact in binary; 10⁵ is exact).
func roundSig(x float64, digits int) float64 {
	if x == 0 {
		return 0
	}
	p := float64(digits-1) - math.Floor(math.Log10(math.Abs(x)))
	if p >= 0 {
		mag := math.Pow(10, p)
		return math.Round(x*mag) / mag
	}
	div := math.Pow(10, -p)
	return math.Round(x/div) * div
}
