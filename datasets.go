package charles

import (
	"charles/internal/gen"
)

// Dataset is a generated snapshot pair with known ground truth, for
// experimentation and benchmarking.
type Dataset = gen.PlantedData

// PlantedConfig parameterizes the synthetic evolving-database generator.
type PlantedConfig = gen.PlantedConfig

// ToyDataset returns the paper's Figure 1 employee snapshots (2016, 2017);
// the 2017 bonus follows the planted policy R1–R3 of Example 1.
func ToyDataset() (src, tgt *Table) { return gen.Toy() }

// ToyTruth returns the ground-truth summary (R1–R3) behind ToyDataset.
func ToyTruth() *Summary { return gen.ToyTruth() }

// PlantedDataset evolves a synthetic table under a known policy of
// conditional linear transformations; use it to measure recovery quality
// under controlled noise, scale, and rule complexity.
func PlantedDataset(cfg PlantedConfig) (*Dataset, error) { return gen.Planted(cfg) }

// MontgomeryDataset simulates the Montgomery County employee-salary dataset
// of the paper's demonstration (schema and scale faithful; policy planted —
// see DESIGN.md for the substitution rationale).
func MontgomeryDataset(seed int64, n int) (*Dataset, error) { return gen.Montgomery(seed, n) }

// BillionairesDataset simulates the Forbes billionaires list with
// sector-conditioned net-worth growth.
func BillionairesDataset(seed int64, n int) (*Dataset, error) { return gen.Billionaires(seed, n) }

// NonlinearDataset evolves a synthetic table under log- and square-feature
// policies; recoverable exactly only with Options.Nonlinear (the extension
// sketched in the paper's limitations section).
func NonlinearDataset(seed int64, n int) (*Dataset, error) { return gen.PlantedNonlinear(seed, n) }

// ChainConfig parameterizes the multi-step, multi-target chain generator.
type ChainConfig = gen.ChainConfig

// ChainDataset builds a deterministic version chain (cfg.Steps+1 snapshots)
// in which four numeric attributes evolve under known per-step policies —
// the timeline workload behind SummarizeTimelineAll and its benchmarks.
func ChainDataset(cfg ChainConfig) ([]*Table, error) { return gen.Chain(cfg) }
