package charles

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

// TestPublicAPIEndToEnd exercises the full public surface the way the
// quickstart example does: datasets → assistant → summarize → render.
func TestPublicAPIEndToEnd(t *testing.T) {
	src, tgt := ToyDataset()
	cond, tran, err := SuggestAttributes(src, tgt, "bonus")
	if err != nil {
		t.Fatal(err)
	}
	if len(cond) == 0 || len(tran) == 0 {
		t.Fatal("assistant returned no suggestions")
	}
	ranked, err := Summarize(src, tgt, DefaultOptions("bonus"))
	if err != nil {
		t.Fatal(err)
	}
	if len(ranked) == 0 {
		t.Fatal("no summaries")
	}
	if ranked[0].Breakdown.Score < 0.85 {
		t.Errorf("top score = %v", ranked[0].Breakdown.Score)
	}

	tree := RenderTree(ranked[0].Summary)
	if !strings.Contains(tree, "edu = PhD") || !strings.Contains(tree, "(no change)") {
		t.Errorf("tree render:\n%s", tree)
	}
	tm := RenderTreemap(ranked[0].Summary, 40)
	if !strings.Contains(tm, "%") {
		t.Errorf("treemap render:\n%s", tm)
	}
	list := RenderRanked(ranked)
	if !strings.Contains(list, "#1") || !strings.Contains(list, "score") {
		t.Errorf("ranked render:\n%s", list)
	}
}

func TestPublicCSVRoundTrip(t *testing.T) {
	src, _ := ToyDataset()
	dir := t.TempDir()
	path := filepath.Join(dir, "toy.csv")
	if err := SaveCSV(path, src); err != nil {
		t.Fatal(err)
	}
	back, err := LoadCSV(path, "name")
	if err != nil {
		t.Fatal(err)
	}
	if back.NumRows() != src.NumRows() {
		t.Errorf("round-trip rows = %d", back.NumRows())
	}
	v, err := back.Value(0, "bonus")
	if err != nil || v.Float() != 23000 {
		t.Errorf("round-trip cell = %v, %v", v, err)
	}
	// And the whole pipeline still works on the reloaded tables.
	var buf bytes.Buffer
	if err := WriteCSV(&buf, back); err != nil {
		t.Fatal(err)
	}
	reread, err := ReadCSV(&buf, "name")
	if err != nil {
		t.Fatal(err)
	}
	if reread.NumRows() != 9 {
		t.Errorf("ReadCSV rows = %d", reread.NumRows())
	}
}

func TestPublicChangesAndAlign(t *testing.T) {
	src, tgt := ToyDataset()
	changes, err := Changes(src, tgt, "bonus")
	if err != nil {
		t.Fatal(err)
	}
	if len(changes) != 7 {
		t.Errorf("bonus changes = %d, want 7 (Cathy and James unchanged)", len(changes))
	}
	a, err := Align(src, tgt)
	if err != nil {
		t.Fatal(err)
	}
	ranked, err := SummarizeAligned(a, DefaultOptions("bonus"))
	if err != nil {
		t.Fatal(err)
	}
	if len(ranked) == 0 {
		t.Fatal("no summaries from aligned path")
	}
}

func TestPublicTableConstruction(t *testing.T) {
	tbl, err := NewTable(Schema{
		{Name: "id", Type: Int},
		{Name: "x", Type: Float},
		{Name: "s", Type: String},
		{Name: "b", Type: Bool},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.AppendRow(I(1), F(2.5), S("a"), B(true)); err != nil {
		t.Fatal(err)
	}
	if tbl.NumRows() != 1 || tbl.NumCols() != 4 {
		t.Errorf("dims = %d×%d", tbl.NumRows(), tbl.NumCols())
	}
}

func TestPublicGenerators(t *testing.T) {
	d, err := PlantedDataset(PlantedConfig{N: 300, Seed: 1, Rules: 2})
	if err != nil {
		t.Fatal(err)
	}
	if d.Src.NumRows() != 300 || d.Truth.Size() != 2 {
		t.Errorf("planted dataset: rows=%d rules=%d", d.Src.NumRows(), d.Truth.Size())
	}
	m, err := MontgomeryDataset(1, 200)
	if err != nil || m.Src.NumRows() != 200 {
		t.Errorf("montgomery: %v", err)
	}
	b, err := BillionairesDataset(1, 200)
	if err != nil || b.Src.NumRows() != 200 {
		t.Errorf("billionaires: %v", err)
	}
	if ToyTruth().Size() != 3 {
		t.Error("toy truth should have 3 rules")
	}
}

func TestCustomWeightsFlowThrough(t *testing.T) {
	src, tgt := ToyDataset()
	opts := DefaultOptions("bonus")
	// Accuracy-only weighting at α=1 should still rank a perfect summary
	// first; interpretability-only weights change the blend.
	opts.Weights = Weights{Size: 5, CondSimplicity: 1, TranSimplicity: 1, Coverage: 1, Normality: 1}
	ranked, err := Summarize(src, tgt, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(ranked) == 0 {
		t.Fatal("no summaries with custom weights")
	}
	def, err := Summarize(src, tgt, DefaultOptions("bonus"))
	if err != nil {
		t.Fatal(err)
	}
	// Heavier size weighting must not increase the interpretability of a
	// multi-CT summary relative to default weights.
	if ranked[0].Summary.Size() > 1 && def[0].Summary.Size() > 1 &&
		ranked[0].Breakdown.Interpretability > def[0].Breakdown.Interpretability+1e-9 {
		t.Error("size-heavy weights increased interpretability of a large summary")
	}
}
