package charles

import (
	"strings"
	"testing"
)

func TestSummarizeAllMontgomery(t *testing.T) {
	// base_salary, overtime_pay, and longevity_pay all evolve; SummarizeAll
	// must cover the numeric ones and skip nothing (all are numeric here).
	d, err := MontgomeryDataset(7, 600)
	if err != nil {
		t.Fatal(err)
	}
	base := DefaultOptions("ignored")
	base.CondAttrs = []string{"department", "grade"}
	res, err := SummarizeAll(d.Src, d.Tgt, base)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"base_salary", "overtime_pay", "longevity_pay"} {
		if _, ok := res.ByAttr[want]; !ok {
			t.Errorf("attribute %q not summarized (got %v)", want, res.Attrs)
		}
	}
	// The base-salary policy must still be recovered in the multi run.
	top := res.ByAttr["base_salary"][0]
	if top.Breakdown.Score < 0.8 {
		t.Errorf("base_salary top score = %v", top.Breakdown.Score)
	}
	// Longevity: flat +250 for grade ≥ 15 — a 1-CT summary with an exact fit.
	ltop := res.ByAttr["longevity_pay"][0]
	if ltop.Breakdown.Accuracy < 0.99 {
		t.Errorf("longevity_pay accuracy = %v", ltop.Breakdown.Accuracy)
	}
}

func TestSummarizeAllSkipsCategorical(t *testing.T) {
	src, _ := ToyDataset()
	tgt := src.Clone()
	// Change a categorical attribute only.
	if err := tgt.MustColumn("edu").Set(0, S("MS")); err != nil {
		t.Fatal(err)
	}
	res, err := SummarizeAll(src, tgt, DefaultOptions("ignored"))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Attrs) != 0 {
		t.Errorf("no numeric attribute changed, got summaries for %v", res.Attrs)
	}
	if _, ok := res.Skipped["edu"]; !ok {
		t.Errorf("edu should be reported as skipped: %v", res.Skipped)
	}
}

func TestExportSQLEndToEnd(t *testing.T) {
	src, tgt := ToyDataset()
	ranked, err := Summarize(src, tgt, DefaultOptions("bonus"))
	if err != nil {
		t.Fatal(err)
	}
	sql := ExportSQL(ranked[0].Summary, "employees")
	if !strings.Contains(sql, "UPDATE employees SET bonus = 1.05 * bonus + 1000 WHERE edu = 'PhD';") {
		t.Errorf("SQL export:\n%s", sql)
	}
	if !strings.Contains(sql, "-- ChARLES change summary") {
		t.Error("missing header comment")
	}
}

func TestSummarizeTimelinePublic(t *testing.T) {
	d1, d2 := ToyDataset()
	d3 := d2.Clone()
	tl, err := SummarizeTimeline([]*Table{d1, d2, d3}, DefaultOptions("bonus"))
	if err != nil {
		t.Fatal(err)
	}
	if len(tl.Steps) != 2 || tl.Steps[1].NoChange != true {
		t.Errorf("timeline steps wrong: %+v", tl.Steps)
	}
	out := tl.Render()
	if !strings.Contains(out, "step 0 → 1") {
		t.Errorf("timeline render:\n%s", out)
	}
}

func TestNonlinearPublicOption(t *testing.T) {
	d, err := NonlinearDataset(31, 600)
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions(d.Target)
	opts.CondAttrs = d.CondAttrs
	opts.TranAttrs = d.TranAttrs
	opts.Nonlinear = true
	opts.T = 3
	ranked, err := Summarize(d.Src, d.Tgt, opts)
	if err != nil {
		t.Fatal(err)
	}
	if ranked[0].Breakdown.Accuracy < 0.99 {
		t.Errorf("nonlinear accuracy via public API = %v", ranked[0].Breakdown.Accuracy)
	}
	if !strings.Contains(ranked[0].Summary.String(), "ln(pay)") {
		t.Errorf("log feature missing:\n%s", ranked[0].Summary)
	}
	// The SQL export of a nonlinear summary uses LN().
	sql := ExportSQL(ranked[0].Summary, "payroll")
	if !strings.Contains(sql, "LN(pay)") {
		t.Errorf("nonlinear SQL:\n%s", sql)
	}
}

func TestParallelWorkersMatchSerial(t *testing.T) {
	src, tgt := ToyDataset()
	serial := DefaultOptions("bonus")
	serial.Workers = 1
	parallel := DefaultOptions("bonus")
	parallel.Workers = 8
	a, err := Summarize(src, tgt, serial)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Summarize(src, tgt, parallel)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("worker count changed result size: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Summary.Fingerprint() != b[i].Summary.Fingerprint() {
			t.Fatalf("worker count changed ranking at %d", i)
		}
	}
}

func TestAlignCommonSummarizePublic(t *testing.T) {
	// Delete one employee and hire another between the toy snapshots: the
	// strict path fails, the tolerant path still recovers the policy on the
	// surviving entities.
	src, tgt := ToyDataset()
	tgt2 := tgt.Gather([]int{0, 1, 2, 3, 4, 5, 6, 7}) // Frank left
	tgt2.MustAppendRow(S("Zoe"), S("F"), S("BS"), I(1), F(90000), F(9000))
	if err := tgt2.SetKey("name"); err != nil {
		t.Fatal(err)
	}
	if _, err := Summarize(src, tgt2, DefaultOptions("bonus")); err == nil {
		t.Fatal("strict summarize should reject insert/delete pair")
	}
	ca, err := AlignCommon(src, tgt2)
	if err != nil {
		t.Fatal(err)
	}
	if len(ca.Deleted) != 1 || len(ca.Inserted) != 1 {
		t.Fatalf("deleted=%v inserted=%v", ca.Deleted, ca.Inserted)
	}
	ranked, err := SummarizeAligned(ca.Aligned, DefaultOptions("bonus"))
	if err != nil {
		t.Fatal(err)
	}
	if ranked[0].Breakdown.Score < 0.8 {
		t.Errorf("tolerant-path score = %v", ranked[0].Breakdown.Score)
	}
}
