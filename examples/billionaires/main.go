// Billionaires: change summarization on the paper's "additional dataset" —
// a simulated Forbes billionaires list whose net worths evolved under
// sector-conditioned growth. Also demonstrates tuning α: a low α favors a
// coarser, more interpretable summary; a high α favors the exact policy.
//
// Run with: go run ./examples/billionaires
package main

import (
	"fmt"
	"log"

	charles "charles"
)

func main() {
	d, err := charles.BillionairesDataset(11, 2500)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("billionaires list: %d people\n\n", d.Src.NumRows())

	for _, alpha := range []float64{0.2, 0.5, 0.9} {
		opts := charles.DefaultOptions("net_worth")
		opts.Alpha = alpha
		opts.CondAttrs = []string{"sector", "age", "country"}
		opts.TranAttrs = []string{"net_worth"}
		ranked, err := charles.Summarize(d.Src, d.Tgt, opts)
		if err != nil {
			log.Fatal(err)
		}
		top := ranked[0]
		fmt.Printf("α = %.1f → top summary (%d CTs, score %.1f%%):\n",
			alpha, top.Summary.Size(), top.Breakdown.Score*100)
		for _, ct := range top.Summary.CTs {
			fmt.Printf("   %s\n", ct)
		}
		fmt.Println()
	}

	fmt.Println("planted ground truth:")
	fmt.Print(d.Truth)
}
