// Salaries: the paper's demonstration scenario at realistic scale — a
// county payroll (simulated Montgomery County, MD; ~9k employees) whose
// base salaries evolved under a multi-rule pay policy. ChARLES recovers the
// policy from the two snapshots alone and we compare it against the planted
// ground truth.
//
// This example also shows CSV round-tripping: the snapshots are written to
// a temp directory and read back the way an analyst would load real
// exports.
//
// Run with: go run ./examples/salaries
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	charles "charles"
)

func main() {
	d, err := charles.MontgomeryDataset(7, 9000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated county payroll: %d employees, %d attributes\n",
		d.Src.NumRows(), d.Src.NumCols())

	// Round-trip through CSV like a real analyst workflow.
	dir, err := os.MkdirTemp("", "charles-salaries")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	srcPath := filepath.Join(dir, "salaries_2016.csv")
	tgtPath := filepath.Join(dir, "salaries_2017.csv")
	if err := charles.SaveCSV(srcPath, d.Src); err != nil {
		log.Fatal(err)
	}
	if err := charles.SaveCSV(tgtPath, d.Tgt); err != nil {
		log.Fatal(err)
	}
	src, err := charles.LoadCSV(srcPath, "employee_id")
	if err != nil {
		log.Fatal(err)
	}
	tgt, err := charles.LoadCSV(tgtPath, "employee_id")
	if err != nil {
		log.Fatal(err)
	}

	// How big is the raw diff a human would otherwise read?
	changes, err := charles.Changes(src, tgt, "base_salary")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("raw diff: %d individual base_salary changes\n\n", len(changes))

	opts := charles.DefaultOptions("base_salary")
	opts.CondAttrs = []string{"department", "grade", "division"}
	opts.TranAttrs = []string{"base_salary"}
	start := time.Now()
	ranked, err := charles.Summarize(src, tgt, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("summarized in %v\n\n", time.Since(start).Round(time.Millisecond))

	fmt.Println("top change summary:")
	fmt.Print(charles.RenderTreemap(ranked[0].Summary, 50))
	fmt.Printf("\nscore %.1f%% (accuracy %.1f%%, interpretability %.1f%%)\n",
		ranked[0].Breakdown.Score*100, ranked[0].Breakdown.Accuracy*100, ranked[0].Breakdown.Interpretability*100)

	fmt.Println("\nplanted ground-truth policy for comparison:")
	fmt.Print(d.Truth)
}
