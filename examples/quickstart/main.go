// Quickstart: reproduce the paper's running example end to end.
//
// It loads the two employee snapshots of Figure 1 (2016, 2017), asks the
// setup assistant for attribute suggestions, summarizes the evolution of
// the bonus attribute, and prints the ranked summaries, the linear model
// tree of Figure 2, and the partition treemap of demo step 10.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	charles "charles"
)

func main() {
	// Step 1 (demo): "upload" the two dataset versions.
	src, tgt := charles.ToyDataset()
	fmt.Println("2016 snapshot:")
	fmt.Println(src)
	fmt.Println("2017 snapshot:")
	fmt.Println(tgt)

	// Steps 4-5: the setup assistant ranks candidate attributes.
	cond, tran, err := charles.SuggestAttributes(src, tgt, "bonus")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("condition attribute candidates:")
	for _, s := range cond {
		fmt.Printf("  %-8s %.3f\n", s.Attr, s.Score)
	}
	fmt.Println("transformation attribute candidates:")
	for _, s := range tran {
		fmt.Printf("  %-8s %.3f\n", s.Attr, s.Score)
	}
	fmt.Println()

	// Steps 2-3 and 6-8: target = bonus, c = 3, t = 2, α = 0.5, top-10.
	opts := charles.DefaultOptions("bonus")
	ranked, err := charles.Summarize(src, tgt, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("ranked change summaries:")
	fmt.Print(charles.RenderRanked(ranked))

	// Steps 9-10: drill into the top summary.
	top := ranked[0].Summary
	fmt.Println("\nlinear model tree (paper Figure 2):")
	fmt.Print(charles.RenderTree(top))
	fmt.Println("\npartition treemap (demo step 10):")
	fmt.Print(charles.RenderTreemap(top, 45))
}
