// Versions: combine the snapshot version store with timeline
// summarization. Three years of a planted payroll are committed to a
// lineage; ChARLES then explains each year-over-year step, detects that the
// policy was restructured between steps, and exports the latest step as
// SQL.
//
// Run with: go run ./examples/versions
package main

import (
	"fmt"
	"log"

	charles "charles"
)

func main() {
	// Year 1 → 2: the planted 3-rule policy.
	d, err := charles.PlantedDataset(charles.PlantedConfig{
		N: 2000, Seed: 5, Rules: 3, UnchangedFrac: 0.3,
	})
	if err != nil {
		log.Fatal(err)
	}
	year1, year2 := d.Src, d.Tgt

	// Year 2 → 3: a different, flat policy — everyone gets 2%.
	year3 := year2.Clone()
	pay := year3.MustColumn("pay")
	for r := 0; r < year3.NumRows(); r++ {
		if err := pay.Set(r, charles.F(1.02*pay.Float(r))); err != nil {
			log.Fatal(err)
		}
	}

	// Commit the lineage.
	store, err := charles.OpenStore("") // memory-only for the example
	if err != nil {
		log.Fatal(err)
	}
	v1, err := store.Commit(year1, "", "year 1")
	if err != nil {
		log.Fatal(err)
	}
	v2, err := store.Commit(year2, v1.ID, "year 2: segment raises")
	if err != nil {
		log.Fatal(err)
	}
	v3, err := store.Commit(year3, v2.ID, "year 3: flat 2% COLA")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("version log:")
	for _, v := range store.Log() {
		fmt.Printf("  %s  %s\n", v.ID, v.Message)
	}

	// Summarize the whole history.
	opts := charles.DefaultOptions("pay")
	opts.CondAttrs = []string{"seg", "tier", "region"}
	opts.TranAttrs = []string{"pay"}
	tl, err := charles.SummarizeTimeline([]*charles.Table{year1, year2, year3}, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(tl.Render())

	// Cross-version summarization straight from the store, exported as SQL.
	ranked, err := store.Summarize(v2.ID, v3.ID, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nSQL replay of the latest step:")
	fmt.Print(charles.ExportSQL(ranked[0].Summary, "payroll"))
}
