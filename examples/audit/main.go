// Audit: use ChARLES as a data-audit tool. A planted policy evolves a
// synthetic payroll, but a handful of rows are corrupted with off-policy
// edits. The recovered top summary explains the policy; the rows whose
// actual new values deviate from the summary's prediction are exactly the
// anomalies an auditor should look at — the "hypothesis development" use
// the paper's limitations section motivates.
//
// Run with: go run ./examples/audit
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	charles "charles"
)

func main() {
	d, err := charles.PlantedDataset(charles.PlantedConfig{
		N: 3000, Seed: 21, Rules: 3, RuleDepth: 1, UnchangedFrac: 0.25,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Corrupt 8 random rows of the target snapshot with off-policy edits.
	rng := rand.New(rand.NewSource(42))
	payCol, err := d.Tgt.Column("pay")
	if err != nil {
		log.Fatal(err)
	}
	corrupted := map[int]bool{}
	for len(corrupted) < 8 {
		r := rng.Intn(d.Tgt.NumRows())
		if corrupted[r] {
			continue
		}
		corrupted[r] = true
		if err := payCol.Set(r, charles.F(payCol.Float(r)*1.5+12345)); err != nil {
			log.Fatal(err)
		}
	}

	opts := charles.DefaultOptions("pay")
	opts.CondAttrs = []string{"seg", "tier", "region"}
	opts.TranAttrs = []string{"pay"}
	ranked, err := charles.Summarize(d.Src, d.Tgt, opts)
	if err != nil {
		log.Fatal(err)
	}
	top := ranked[0]
	fmt.Printf("recovered policy (score %.1f%%):\n", top.Breakdown.Score*100)
	for _, ct := range top.Summary.CTs {
		fmt.Printf("   %s\n", ct)
	}

	// Rows that deviate from the recovered policy are audit candidates.
	preds, _, err := top.Summary.Apply(d.Src)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nrows deviating from the recovered policy (audit candidates):")
	found := 0
	truePositives := 0
	for r := 0; r < d.Src.NumRows(); r++ {
		actual := payCol.Float(r)
		if math.Abs(preds[r]-actual) > 100 {
			found++
			mark := " "
			if corrupted[r] {
				mark = "*"
				truePositives++
			}
			if found <= 12 {
				id, _ := d.Src.Value(r, "id")
				fmt.Printf(" %s id=%-6s predicted %.2f, actual %.2f\n", mark, id, preds[r], actual)
			}
		}
	}
	fmt.Printf("\nflagged %d rows; %d/%d planted corruptions caught (* = planted)\n",
		found, truePositives, len(corrupted))
}
