module charles

go 1.22
