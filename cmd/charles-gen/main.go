// Command charles-gen generates snapshot pairs (source CSV, target CSV, and
// a ground-truth description) from the built-in dataset simulators, so the
// charles CLI and external tools can be exercised on realistic data.
//
// Usage:
//
//	charles-gen -dataset toy|planted|montgomery|billionaires
//	            [-n 1000] [-seed 1] [-rules 3] [-noise 0] [-unchanged 0.3]
//	            [-out-dir .]
//	charles-gen -mutate-chain 8 [-n 40] [-seed 1] [-out-dir .]
//
// With -mutate-chain N, instead of a snapshot pair it writes a randomized
// N-step version chain (chain_v0.csv … chain_vN.csv, key column "id") —
// the same fuzz chains the store's property tests use, with cell edits,
// row inserts/deletes, nulls, and CSV-hostile string cells — so the
// charles-store CLI (and CI) can exercise commit/verify on realistic
// adversarial histories.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	charles "charles"
	"charles/internal/gen"
)

func main() {
	var (
		dataset   = flag.String("dataset", "toy", "toy | planted | montgomery | billionaires")
		n         = flag.Int("n", 1000, "rows (ignored for toy)")
		seed      = flag.Int64("seed", 1, "generator seed")
		rules     = flag.Int("rules", 3, "planted rules (planted only)")
		depth     = flag.Int("depth", 1, "planted rule depth: 1 or 2 (planted only)")
		noise     = flag.Float64("noise", 0, "relative noise std on evolved values (planted only)")
		unchanged = flag.Float64("unchanged", 0.3, "fraction of rows no rule covers (planted only)")
		outDir    = flag.String("out-dir", ".", "output directory")
		chain     = flag.Int("mutate-chain", 0, "write a randomized version chain of this many mutation steps (chain_v0.csv…) instead of a snapshot pair")
	)
	flag.Parse()

	if *chain > 0 {
		snaps, err := gen.MutateChain(gen.FuzzConfig{N: *n, Steps: *chain, Seed: *seed})
		if err != nil {
			fatal(err)
		}
		for i, s := range snaps {
			p := filepath.Join(*outDir, fmt.Sprintf("chain_v%d.csv", i))
			if err := charles.SaveCSV(p, s); err != nil {
				fatal(err)
			}
		}
		fmt.Printf("wrote %d chain snapshots (key column id) to %s\n",
			len(snaps), filepath.Join(*outDir, "chain_v*.csv"))
		return
	}

	var src, tgt *charles.Table
	var truthText string
	switch *dataset {
	case "toy":
		src, tgt = charles.ToyDataset()
		truthText = charles.ToyTruth().String()
	case "planted":
		d, err := charles.PlantedDataset(charles.PlantedConfig{
			N: *n, Seed: *seed, Rules: *rules, RuleDepth: *depth,
			NoiseStd: *noise, UnchangedFrac: *unchanged,
		})
		if err != nil {
			fatal(err)
		}
		src, tgt, truthText = d.Src, d.Tgt, d.Truth.String()
	case "montgomery":
		d, err := charles.MontgomeryDataset(*seed, *n)
		if err != nil {
			fatal(err)
		}
		src, tgt, truthText = d.Src, d.Tgt, d.Truth.String()
	case "billionaires":
		d, err := charles.BillionairesDataset(*seed, *n)
		if err != nil {
			fatal(err)
		}
		src, tgt, truthText = d.Src, d.Tgt, d.Truth.String()
	default:
		fatal(fmt.Errorf("unknown dataset %q", *dataset))
	}

	srcPath := filepath.Join(*outDir, *dataset+"_source.csv")
	tgtPath := filepath.Join(*outDir, *dataset+"_target.csv")
	truthPath := filepath.Join(*outDir, *dataset+"_truth.txt")
	if err := charles.SaveCSV(srcPath, src); err != nil {
		fatal(err)
	}
	if err := charles.SaveCSV(tgtPath, tgt); err != nil {
		fatal(err)
	}
	if err := os.WriteFile(truthPath, []byte(truthText), 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s (%d rows), %s, %s\n", srcPath, src.NumRows(), tgtPath, truthPath)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "charles-gen:", err)
	os.Exit(1)
}
