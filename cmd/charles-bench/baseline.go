package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync"
	"testing"
	"time"

	"charles"
)

// BenchResult is one measured micro-benchmark.
type BenchResult struct {
	NsPerOp     int64 `json:"ns_per_op"`
	AllocsPerOp int64 `json:"allocs_per_op"`
	BytesPerOp  int64 `json:"bytes_per_op"`
	N           int   `json:"n"` // iterations measured
}

// BaselineFile is the schema of BENCH_baseline.json: the pre-change numbers
// of the PR that introduced the vectorized evaluation layer (kept for the
// record) and the most recent measurement.
type BaselineFile struct {
	Recorded  string                    `json:"recorded"`
	Go        string                    `json:"go"`
	Note      string                    `json:"note,omitempty"`
	PreChange map[string]BenchResult    `json:"pre_change,omitempty"`
	Current   map[string]BenchResult    `json:"current"`
	Loadtest  map[string]LoadtestResult `json:"loadtest,omitempty"`
}

// writeBaseline measures the engine micro-benchmarks and writes (or
// updates) the baseline file, preserving an existing pre_change section.
func writeBaseline(path string) error {
	// Fail on an unwritable destination before spending ~30s measuring.
	probe, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE, 0o644)
	if err != nil {
		return err
	}
	probe.Close()
	out := BaselineFile{
		Recorded: time.Now().UTC().Format("2006-01-02"),
		Go:       runtime.Version(),
		Current:  map[string]BenchResult{},
	}
	if prev, err := os.ReadFile(path); err == nil {
		var old BaselineFile
		if err := json.Unmarshal(prev, &old); err == nil {
			out.PreChange = old.PreChange
			out.Note = old.Note
			out.Loadtest = old.Loadtest
		}
	}

	benches := []struct {
		name string
		fn   func(b *testing.B)
	}{
		{"Summarize2k", benchSummarize2k},
		{"SummarizeToy", benchSummarizeToy},
		{"Align5k", benchAlign5k},
		{"Timeline8x4", benchTimeline8x4},
		{"LiveExtend10", benchLiveExtend10},
		{"LiveExtend50", benchLiveExtend50},
		{"StoreChain50", benchStoreChain50},
		{"DiffChain50", benchDiffChain50},
		{"DiffChain50Align", benchDiffChain50Align},
		{"HubCommit16", benchHubCommit16},
	}
	for _, bench := range benches {
		fmt.Fprintf(os.Stderr, "measuring %s...\n", bench.name)
		r := testing.Benchmark(bench.fn)
		out.Current[bench.name] = BenchResult{
			NsPerOp:     r.NsPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			N:           r.N,
		}
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}

// benchSummarize2k mirrors BenchmarkSummarize2k: the 2 000-row planted
// dataset with fixed attribute pools — the per-candidate cost driver.
func benchSummarize2k(b *testing.B) {
	d, err := charles.PlantedDataset(charles.PlantedConfig{N: 2000, Seed: 13, Rules: 3, RuleDepth: 2, UnchangedFrac: 0.3})
	if err != nil {
		b.Fatal(err)
	}
	opts := charles.DefaultOptions(d.Target)
	opts.CondAttrs = d.CondAttrs
	opts.TranAttrs = d.TranAttrs
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := charles.Summarize(d.Src, d.Tgt, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// benchSummarizeToy mirrors BenchmarkSummarizeToy: the 9-row demo latency.
func benchSummarizeToy(b *testing.B) {
	src, tgt := charles.ToyDataset()
	opts := charles.DefaultOptions("bonus")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := charles.Summarize(src, tgt, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// benchTimeline8x4 mirrors BenchmarkTimeline: the batch timeline workload —
// an 8-step chain with four evolving numeric attributes, steps run on the
// worker pool and per-pair acceleration shared across targets.
func benchTimeline8x4(b *testing.B) {
	snaps, err := charles.ChainDataset(charles.ChainConfig{N: 300, Steps: 8, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	base := charles.DefaultOptions("")
	base.CondAttrs = []string{"dept", "grade"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := charles.SummarizeTimelineAll(snaps, base); err != nil {
			b.Fatal(err)
		}
	}
}

// benchLiveExtend seeds an incrementally maintained timeline over a chain
// of the given length and measures advancing it by ONE new commit — the
// per-commit cost of live maintenance. LiveExtend10 vs LiveExtend50 is the
// incremental-maintenance acceptance check: the numbers should be close,
// because one step's cost does not grow with how long the chain already is
// (the from-scratch alternative is Timeline-shaped — linear in steps).
func benchLiveExtend(b *testing.B, steps int) {
	snaps, err := charles.ChainDataset(charles.ChainConfig{N: 300, Steps: steps, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	ids := make([]string, len(snaps))
	for i := range ids {
		ids[i] = fmt.Sprintf("v%03d", i)
	}
	base := charles.DefaultOptions("")
	base.CondAttrs = []string{"dept", "grade"}
	m, err := charles.NewTimelineMaintainer(snaps[:len(snaps)-1], ids[:len(ids)-1], base)
	if err != nil {
		b.Fatal(err)
	}
	last, lastID := snaps[len(snaps)-1], ids[len(ids)-1]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.Fork().Extend(lastID, last); err != nil {
			b.Fatal(err)
		}
	}
}

func benchLiveExtend10(b *testing.B) { benchLiveExtend(b, 10) }

func benchLiveExtend50(b *testing.B) { benchLiveExtend(b, 50) }

// benchStoreChain50 mirrors BenchmarkStoreChain50: a root→head checkout
// walk of a 50-step delta-encoded version chain; after the first walk fills
// the table LRU, each op is the zero-parse cached read path.
func benchStoreChain50(b *testing.B) {
	snaps, err := charles.ChainDataset(charles.ChainConfig{N: 120, Steps: 50, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	st, err := charles.OpenStoreWith("", charles.StoreOptions{TableCache: len(snaps)})
	if err != nil {
		b.Fatal(err)
	}
	parent := ""
	var head string
	for _, snap := range snaps {
		v, err := st.Commit(snap, parent, "step")
		if err != nil {
			b.Fatal(err)
		}
		parent, head = v.ID, v.ID
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		chain, err := st.Chain(head)
		if err != nil {
			b.Fatal(err)
		}
		for _, v := range chain {
			if _, err := st.Checkout(v.ID); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// diffChainStore commits the 50-step chain into a memory store that keeps
// the whole chain delta-encoded and warms every cache with one pass over the
// adjacent pairs.
func diffChainStore(b *testing.B) (*charles.VersionStore, []string) {
	b.Helper()
	snaps, err := charles.ChainDataset(charles.ChainConfig{N: 120, Steps: 50, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	st, err := charles.OpenStoreWith("", charles.StoreOptions{TableCache: len(snaps), AnchorEvery: len(snaps) + 1})
	if err != nil {
		b.Fatal(err)
	}
	ids := make([]string, 0, len(snaps))
	parent := ""
	for _, snap := range snaps {
		v, err := st.Commit(snap, parent, "step")
		if err != nil {
			b.Fatal(err)
		}
		ids = append(ids, v.ID)
		parent = v.ID
	}
	for i := 0; i+1 < len(ids); i++ {
		if _, native, err := st.DiffResult(ids[i], ids[i+1], 1e-9); err != nil || !native {
			b.Fatalf("pair %d: native=%v err=%v", i, native, err)
		}
		if _, err := st.Checkout(ids[i+1]); err != nil {
			b.Fatal(err)
		}
	}
	return st, ids
}

// benchDiffChain50 mirrors BenchmarkDiffChain50: warm change queries over
// every adjacent pair of the 50-step chain — cold queries assembled
// delta-natively from the packs' ops, warm repeats from the answer cache.
func benchDiffChain50(b *testing.B) {
	st, ids := diffChainStore(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j+1 < len(ids); j++ {
			res, _, err := st.DiffResult(ids[j], ids[j+1], 1e-9)
			if err != nil {
				b.Fatal(err)
			}
			if res.UpdateDistance == 0 {
				b.Fatalf("pair %d: empty diff", j)
			}
		}
	}
}

// benchDiffChain50Align mirrors BenchmarkDiffChain50Align: the identical
// queries through the classic checkout+align path.
func benchDiffChain50Align(b *testing.B) {
	st, ids := diffChainStore(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j+1 < len(ids); j++ {
			src, err := st.Checkout(ids[j])
			if err != nil {
				b.Fatal(err)
			}
			tgt, err := st.Checkout(ids[j+1])
			if err != nil {
				b.Fatal(err)
			}
			res, err := charles.DiffSnapshots(src, tgt, 1e-9)
			if err != nil {
				b.Fatal(err)
			}
			if res.UpdateDistance == 0 {
				b.Fatalf("pair %d: empty diff", j)
			}
		}
	}
}

// benchHubCommit16 mirrors BenchmarkHubCommit16: 16 goroutines each
// committing a pre-generated 6-step chain into its own fresh dataset of one
// shared hub. Per-shard locking keeps the 16 commit pipelines fully
// concurrent while every shard's caches charge the one shared budget.
func benchHubCommit16(b *testing.B) {
	const shards = 16
	chains := make([][]*charles.Table, shards)
	for g := range chains {
		snaps, err := charles.ChainDataset(charles.ChainConfig{N: 60, Steps: 6, Seed: int64(g + 1)})
		if err != nil {
			b.Fatal(err)
		}
		chains[g] = snaps
	}
	h, err := charles.OpenHubWith("", charles.HubOptions{MemoryBudget: 64 << 20})
	if err != nil {
		b.Fatal(err)
	}
	defer h.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		errs := make(chan error, shards)
		for g := 0; g < shards; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				// A fresh dataset per goroutine per iteration: every commit
				// is real pack-building work, never a content-address dedup.
				ds := fmt.Sprintf("d%02d-%d", g, i)
				parent := ""
				for _, snap := range chains[g] {
					v, err := h.Commit("bench", ds, snap, parent, "step")
					if err != nil {
						errs <- err
						return
					}
					parent = v.ID
				}
			}(g)
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			b.Fatal(err)
		}
	}
}

// benchAlign5k mirrors BenchmarkAlign: key indexing + row matching alone.
func benchAlign5k(b *testing.B) {
	d, err := charles.MontgomeryDataset(7, 5000)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := charles.Align(d.Src, d.Tgt.Clone()); err != nil {
			b.Fatal(err)
		}
	}
}
