// Command charles-bench runs the reproduction experiments E1–E11 (one per
// paper figure/artifact plus the robustness and scalability studies; see
// DESIGN.md) and prints their reports. It is the source of the measured
// numbers recorded in EXPERIMENTS.md.
//
// Usage:
//
//	charles-bench            # run everything at paper scale
//	charles-bench -quick     # small sizes (seconds)
//	charles-bench -run E6    # one experiment
package main

import (
	"flag"
	"fmt"
	"os"

	"charles/internal/experiments"
)

func main() {
	var (
		quick = flag.Bool("quick", false, "shrink data sizes so the suite runs in seconds")
		run   = flag.String("run", "", "run only the experiment with this id (e.g. E6)")
	)
	flag.Parse()
	cfg := experiments.Config{Quick: *quick}

	if *run != "" {
		rep, err := experiments.Run(*run, cfg)
		if err != nil {
			fatal(err)
		}
		fmt.Print(rep.String())
		return
	}
	for _, r := range experiments.All() {
		rep, err := r.Run(cfg)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", r.ID, err))
		}
		fmt.Print(rep.String())
		fmt.Println()
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "charles-bench:", err)
	os.Exit(1)
}
