// Command charles-bench runs the reproduction experiments E1–E11 (one per
// paper figure/artifact plus the robustness and scalability studies; see
// DESIGN.md) and prints their reports. It is the source of the measured
// numbers recorded in EXPERIMENTS.md.
//
// Usage:
//
//	charles-bench                          # run everything at paper scale
//	charles-bench -quick                   # small sizes (seconds)
//	charles-bench -run E6                  # one experiment
//	charles-bench -baseline BENCH_baseline.json
//	                                       # measure the engine micro-
//	                                       # benchmarks and record ns/op,
//	                                       # allocs/op, bytes/op as JSON
//	charles-bench loadtest [flags]         # drive the HTTP serving surface
//	                                       # and record p50/p95/p99 latency,
//	                                       # throughput, and shed/error rates
//
// -baseline re-measures the hot-path micro-benchmarks (Summarize on the
// 2k planted dataset, the toy dataset, and snapshot alignment) with
// testing.Benchmark and writes them under "current" in the named JSON file,
// preserving any existing "pre_change" section — that is how the perf
// trajectory across PRs is recorded.
//
// The loadtest subcommand spins up (or targets, with -url) a serving
// endpoint, drives a mixed log/checkout/diff/summarize workload at a fixed
// concurrency for a fixed duration, validates the server's /metrics
// exposition output, and optionally records the percentiles under
// "loadtest" in the same BENCH json file (-out); -check makes it a CI
// smoke that fails on zero throughput or any 5xx. With -live it instead
// drives the live-timeline workload against a fresh in-process server:
// one committer appends snapshots, rides each commit with a
// /timeline/watch long-poll, and reads the warm head-relative POST
// /timeline answer, while the remaining workers hold watch subscriptions
// — each latency sample is one full commit-to-warm-answer cycle, and the
// recorded result is named ServeLiveCommit.
package main

import (
	"flag"
	"fmt"
	"os"

	"charles/internal/experiments"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "loadtest" {
		if err := runLoadtest(os.Args[2:]); err != nil {
			fatal(err)
		}
		return
	}
	var (
		quick    = flag.Bool("quick", false, "shrink data sizes so the suite runs in seconds")
		run      = flag.String("run", "", "run only the experiment with this id (e.g. E6)")
		baseline = flag.String("baseline", "", "measure engine micro-benchmarks and write them to this JSON file")
	)
	flag.Parse()
	cfg := experiments.Config{Quick: *quick}

	if *baseline != "" {
		if err := writeBaseline(*baseline); err != nil {
			fatal(err)
		}
		return
	}

	if *run != "" {
		rep, err := experiments.Run(*run, cfg)
		if err != nil {
			fatal(err)
		}
		fmt.Print(rep.String())
		return
	}
	for _, r := range experiments.All() {
		rep, err := r.Run(cfg)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", r.ID, err))
		}
		fmt.Print(rep.String())
		fmt.Println()
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "charles-bench:", err)
	os.Exit(1)
}
