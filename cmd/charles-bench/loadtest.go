package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"charles"
	"charles/internal/csvio"
	"charles/internal/metrics"
	"charles/internal/serve"
	"charles/internal/store"
)

// LoadtestResult is one measured HTTP load-test run: throughput, latency
// percentiles, and the error/shed breakdown, recorded alongside the
// micro-benchmarks in BENCH_baseline.json.
type LoadtestResult struct {
	Concurrency int     `json:"concurrency"`
	DurationSec float64 `json:"duration_sec"`
	Requests    int64   `json:"requests"`
	RPS         float64 `json:"rps"`
	P50MS       float64 `json:"p50_ms"`
	P95MS       float64 `json:"p95_ms"`
	P99MS       float64 `json:"p99_ms"`
	Shed        int64   `json:"shed"`    // 429s from the concurrency limiter
	Err4xx      int64   `json:"err_4xx"` // non-429 4xx (should be zero in the fixed mix)
	Err5xx      int64   `json:"err_5xx"`
}

// runLoadtest is the `charles-bench loadtest` subcommand: drive the HTTP
// serving surface at a configurable concurrency for a fixed duration with
// a mixed read/summarize workload, then report percentile latencies and
// validate the server's /metrics output.
func runLoadtest(args []string) error {
	fs := flag.NewFlagSet("loadtest", flag.ExitOnError)
	var (
		url         = fs.String("url", "", "base URL of a running charles-serve (empty = start an in-process server over a seeded memory store)")
		concurrency = fs.Int("concurrency", 16, "concurrent client workers")
		duration    = fs.Duration("duration", 5*time.Second, "how long to drive load")
		maxInFlight = fs.Int("max-inflight", 64, "server concurrency cap for the in-process server (0 = unlimited)")
		out         = fs.String("out", "", "record the result under \"loadtest\" in this BENCH json file, preserving other sections")
		check       = fs.Bool("check", false, "exit non-zero unless the run served 2xx traffic with zero 5xx (CI smoke)")
		live        = fs.Bool("live", false, "drive the live commit+watch workload instead of the read mix: a committer appends versions while watchers ride /timeline/watch; the recorded latency is the full commit -> watch-delivery -> warm /timeline answer cycle")
	)
	fs.Usage = func() {
		fmt.Fprintln(fs.Output(), "usage: charles-bench loadtest [flags]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}

	var res LoadtestResult
	var base string
	resultName := "ServeMixed"
	if *live {
		// The live workload grows its own lineage on a fresh store; an
		// external -url target would be polluted with bench commits.
		if *url != "" {
			return fmt.Errorf("loadtest: -live drives commits and needs its own in-process server; drop -url")
		}
		resultName = "ServeLiveCommit"
		srvURL, shutdown, err := startLiveServer(*maxInFlight)
		if err != nil {
			return err
		}
		defer shutdown()
		base = srvURL
		if res, err = driveLiveLoad(base, *concurrency, *duration); err != nil {
			return err
		}
	} else {
		base = *url
		if base == "" {
			srvURL, shutdown, err := startLoadtestServer(*maxInFlight)
			if err != nil {
				return err
			}
			defer shutdown()
			base = srvURL
		}
		ids, err := fetchVersionIDs(base)
		if err != nil {
			return err
		}
		if len(ids) < 2 {
			return fmt.Errorf("loadtest: target %s has %d versions, need >= 2 (commit a chain first)", base, len(ids))
		}
		if res, err = driveLoad(base, ids, *concurrency, *duration); err != nil {
			return err
		}
	}

	// Scrape and lint /metrics after the run: the loadtest doubles as the
	// exposition-format check against a server that just saw real traffic.
	if err := lintMetrics(base); err != nil {
		return fmt.Errorf("loadtest: /metrics validation failed: %w", err)
	}
	if *live {
		if err := checkLiveMetrics(base); err != nil {
			return fmt.Errorf("loadtest: live metrics validation failed: %w", err)
		}
	}

	fmt.Printf("loadtest: %d workers, %s against %s\n", *concurrency, duration.String(), base)
	fmt.Printf("  requests  %d (%.0f req/s)\n", res.Requests, res.RPS)
	fmt.Printf("  latency   p50 %.2fms  p95 %.2fms  p99 %.2fms\n", res.P50MS, res.P95MS, res.P99MS)
	fmt.Printf("  shed %d   4xx %d   5xx %d\n", res.Shed, res.Err4xx, res.Err5xx)
	fmt.Println("  metrics   /metrics parsed and linted OK")

	if *out != "" {
		if err := recordLoadtest(*out, resultName, res); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *out)
	}
	if *check {
		served := res.Requests - res.Shed - res.Err4xx - res.Err5xx
		if served <= 0 {
			return fmt.Errorf("loadtest check failed: no successful requests (total %d, shed %d, 4xx %d, 5xx %d)",
				res.Requests, res.Shed, res.Err4xx, res.Err5xx)
		}
		if res.Err5xx > 0 {
			return fmt.Errorf("loadtest check failed: %d server errors", res.Err5xx)
		}
	}
	return nil
}

// startLoadtestServer seeds a memory store with a deterministic 8-step
// version chain and serves it on a loopback listener.
func startLoadtestServer(maxInFlight int) (string, func(), error) {
	snaps, err := charles.ChainDataset(charles.ChainConfig{N: 200, Steps: 8, Seed: 1})
	if err != nil {
		return "", nil, err
	}
	st, err := store.Open("")
	if err != nil {
		return "", nil, err
	}
	parent := ""
	for _, snap := range snaps {
		v, err := st.Commit(snap, parent, "loadtest step")
		if err != nil {
			return "", nil, err
		}
		parent = v.ID
	}
	srv := serve.NewServerWith(st, serve.Config{CacheSize: 64, MaxInFlight: maxInFlight})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	hs := &http.Server{Handler: srv}
	go func() { _ = hs.Serve(ln) }()
	return "http://" + ln.Addr().String(), func() { _ = hs.Close() }, nil
}

// fetchVersionIDs lists the target's version chain (oldest first).
func fetchVersionIDs(base string) ([]string, error) {
	resp, err := http.Get(base + "/versions")
	if err != nil {
		return nil, err
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /versions: status %d: %s", resp.StatusCode, body)
	}
	var versions []store.Version
	if err := json.Unmarshal(body, &versions); err != nil {
		return nil, fmt.Errorf("GET /versions: %w", err)
	}
	ids := make([]string, len(versions))
	for i, v := range versions {
		ids[i] = v.ID
	}
	return ids, nil
}

// driveLoad runs the mixed workload: version log reads, CSV checkouts,
// adjacent-pair diffs, and summarize queries in a fixed rotation, each
// worker with its own seeded RNG so runs are comparable.
func driveLoad(base string, ids []string, concurrency int, duration time.Duration) (LoadtestResult, error) {
	if concurrency < 1 {
		concurrency = 1
	}
	client := &http.Client{
		Transport: &http.Transport{
			MaxIdleConns:        concurrency * 2,
			MaxIdleConnsPerHost: concurrency * 2,
		},
		Timeout: 30 * time.Second,
	}
	var (
		shed, err4xx, err5xx, total atomic.Int64
		mu                          sync.Mutex
		latencies                   []time.Duration
		firstErr                    error
		errOnce                     sync.Once
	)
	deadline := time.Now().Add(duration)
	var wg sync.WaitGroup
	for w := 0; w < concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) + 1))
			local := make([]time.Duration, 0, 4096)
			for i := 0; time.Now().Before(deadline); i++ {
				pair := rng.Intn(len(ids) - 1)
				var (
					resp *http.Response
					err  error
					t0   = time.Now()
				)
				switch i % 4 {
				case 0:
					resp, err = client.Get(base + "/versions")
				case 1:
					resp, err = client.Get(base + "/versions/" + ids[pair] + "/csv")
				case 2:
					resp, err = client.Get(base + "/diff?from=" + ids[pair] + "&to=" + ids[pair+1])
				default:
					body, merr := json.Marshal(map[string]string{
						"from": ids[pair], "to": ids[pair+1], "target": "salary",
					})
					if merr != nil {
						err = merr
						break
					}
					resp, err = client.Post(base+"/summarize", "application/json", bytes.NewReader(body))
				}
				if err != nil {
					errOnce.Do(func() { firstErr = err })
					return
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				local = append(local, time.Since(t0))
				total.Add(1)
				switch {
				case resp.StatusCode == http.StatusTooManyRequests:
					shed.Add(1)
				case resp.StatusCode >= 500:
					err5xx.Add(1)
				case resp.StatusCode >= 400:
					err4xx.Add(1)
				}
			}
			mu.Lock()
			latencies = append(latencies, local...)
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	if firstErr != nil {
		return LoadtestResult{}, fmt.Errorf("loadtest worker: %w", firstErr)
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	pct := func(p float64) float64 {
		if len(latencies) == 0 {
			return 0
		}
		idx := int(p * float64(len(latencies)-1))
		return float64(latencies[idx]) / float64(time.Millisecond)
	}
	return LoadtestResult{
		Concurrency: concurrency,
		DurationSec: duration.Seconds(),
		Requests:    total.Load(),
		RPS:         float64(total.Load()) / duration.Seconds(),
		P50MS:       pct(0.50),
		P95MS:       pct(0.95),
		P99MS:       pct(0.99),
		Shed:        shed.Load(),
		Err4xx:      err4xx.Load(),
		Err5xx:      err5xx.Load(),
	}, nil
}

// startLiveServer serves a fresh, empty memory store: the live workload
// grows the lineage itself, commit by commit.
func startLiveServer(maxInFlight int) (string, func(), error) {
	st, err := store.Open("")
	if err != nil {
		return "", nil, err
	}
	srv := serve.NewServerWith(st, serve.Config{CacheSize: 256, MaxInFlight: maxInFlight})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	hs := &http.Server{Handler: srv}
	go func() { _ = hs.Serve(ln) }()
	return "http://" + ln.Addr().String(), func() { _ = hs.Close() }, nil
}

// driveLiveLoad runs the live commit+watch workload: one committer appends
// pre-generated snapshots to the lineage, riding each commit with a
// /timeline/watch long-poll (which returns once the commit-driven
// maintenance has applied that commit) and then reading the warm
// head-relative POST /timeline answer. The other workers hold long-poll
// subscriptions throughout. Each recorded latency sample is one full
// commit → watch-delivery → warm-answer cycle — the number that must stay
// flat as the chain grows, because maintenance is one engine step per
// commit, never a re-walk.
func driveLiveLoad(base string, concurrency int, duration time.Duration) (LoadtestResult, error) {
	if concurrency < 1 {
		concurrency = 1
	}
	snaps, err := charles.ChainDataset(charles.ChainConfig{N: 120, Steps: 400, Seed: 2})
	if err != nil {
		return LoadtestResult{}, err
	}
	csvs := make([]string, len(snaps))
	for i, snap := range snaps {
		var buf bytes.Buffer
		if err := csvio.Write(&buf, snap); err != nil {
			return LoadtestResult{}, err
		}
		csvs[i] = buf.String()
	}

	client := &http.Client{
		Transport: &http.Transport{
			MaxIdleConns:        concurrency * 2,
			MaxIdleConnsPerHost: concurrency * 2,
		},
		Timeout: 60 * time.Second,
	}
	var shed, err4xx, err5xx, total atomic.Int64
	classify := func(code int) {
		total.Add(1)
		switch {
		case code == http.StatusTooManyRequests:
			shed.Add(1)
		case code >= 500:
			err5xx.Add(1)
		case code >= 400:
			err4xx.Add(1)
		}
	}

	// Passive watchers: they hold long-poll subscriptions for the whole run,
	// advancing since= as events arrive. Cancelled (not just signalled) at
	// the end, so a poll blocked waiting for a commit that will never come
	// does not stall the shutdown.
	watchCtx, cancelWatch := context.WithCancel(context.Background())
	defer cancelWatch()
	var watchWG sync.WaitGroup
	for w := 0; w < concurrency-1; w++ {
		watchWG.Add(1)
		go func() {
			defer watchWG.Done()
			since := ""
			for watchCtx.Err() == nil {
				req, err := http.NewRequestWithContext(watchCtx, http.MethodGet,
					base+"/timeline/watch?since="+since, nil)
				if err != nil {
					return
				}
				resp, err := client.Do(req)
				if err != nil {
					return // cancelled or connection cut at shutdown
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				classify(resp.StatusCode)
				var pr struct {
					Head string `json:"head"`
				}
				if json.Unmarshal(body, &pr) == nil && pr.Head != "" {
					since = pr.Head
				}
			}
		}()
	}

	var cycles []time.Duration
	parent := ""
	deadline := time.Now().Add(duration)
	for i := 0; time.Now().Before(deadline) && i < len(csvs); i++ {
		t0 := time.Now()
		body, err := json.Marshal(map[string]any{
			"csv": csvs[i], "key": []string{"id"}, "parent": parent, "message": "live step",
		})
		if err != nil {
			return LoadtestResult{}, err
		}
		resp, err := client.Post(base+"/versions", "application/json", bytes.NewReader(body))
		if err != nil {
			return LoadtestResult{}, fmt.Errorf("commit %d: %w", i, err)
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		classify(resp.StatusCode)
		if resp.StatusCode != http.StatusOK {
			return LoadtestResult{}, fmt.Errorf("commit %d: status %d: %s", i, resp.StatusCode, data)
		}
		var v store.Version
		if err := json.Unmarshal(data, &v); err != nil {
			return LoadtestResult{}, err
		}
		if parent != "" {
			// Ride the commit: this returns once the live maintenance has
			// moved the head past the previous version.
			wresp, err := client.Get(base + "/timeline/watch?since=" + parent)
			if err != nil {
				return LoadtestResult{}, fmt.Errorf("watch after commit %d: %w", i, err)
			}
			_, _ = io.Copy(io.Discard, wresp.Body)
			wresp.Body.Close()
			classify(wresp.StatusCode)
			// The warm head-relative answer: assembled from the maintained
			// timeline, memoized per head — no chain walk.
			tresp, err := client.Post(base+"/timeline", "application/json", bytes.NewReader([]byte("{}")))
			if err != nil {
				return LoadtestResult{}, fmt.Errorf("timeline after commit %d: %w", i, err)
			}
			_, _ = io.Copy(io.Discard, tresp.Body)
			tresp.Body.Close()
			classify(tresp.StatusCode)
			cycles = append(cycles, time.Since(t0))
		}
		parent = v.ID
	}
	cancelWatch()
	watchWG.Wait()

	sort.Slice(cycles, func(i, j int) bool { return cycles[i] < cycles[j] })
	pct := func(p float64) float64 {
		if len(cycles) == 0 {
			return 0
		}
		idx := int(p * float64(len(cycles)-1))
		return float64(cycles[idx]) / float64(time.Millisecond)
	}
	return LoadtestResult{
		Concurrency: concurrency,
		DurationSec: duration.Seconds(),
		Requests:    total.Load(),
		RPS:         float64(len(cycles)) / duration.Seconds(),
		P50MS:       pct(0.50),
		P95MS:       pct(0.95),
		P99MS:       pct(0.99),
		Shed:        shed.Load(),
		Err4xx:      err4xx.Load(),
		Err5xx:      err5xx.Load(),
	}, nil
}

// checkLiveMetrics asserts the live run's maintenance is visible in the
// scrape: commits were notified and applied incrementally.
func checkLiveMetrics(base string) error {
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		return err
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return err
	}
	shard := map[string]string{"shard": "default/default"}
	if v, ok := metrics.Value(body, "charles_commit_notifications_total", shard); !ok || v <= 0 {
		return fmt.Errorf("charles_commit_notifications_total missing or zero (%v, %v)", v, ok)
	}
	if v, ok := metrics.Value(body, "charles_timeline_maintenance_total",
		map[string]string{"shard": "default/default", "mode": "extend"}); !ok || v <= 0 {
		return fmt.Errorf("charles_timeline_maintenance_total{mode=extend} missing or zero (%v, %v): commits were not applied incrementally", v, ok)
	}
	return nil
}

// lintMetrics scrapes GET /metrics and validates the Prometheus text
// exposition output.
func lintMetrics(base string) error {
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		return err
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %d", resp.StatusCode)
	}
	if err := metrics.Lint(body); err != nil {
		return err
	}
	// The traffic just sent must be visible in the scrape.
	if v, ok := metrics.Value(body, "charles_http_requests_total",
		map[string]string{"route": "/versions", "shard": "default/default", "class": "2xx"}); !ok || v <= 0 {
		return fmt.Errorf("charles_http_requests_total for /versions missing or zero (%v, %v)", v, ok)
	}
	return nil
}

// recordLoadtest merges one loadtest result into the BENCH json file,
// leaving the micro-benchmark sections untouched.
func recordLoadtest(path, name string, res LoadtestResult) error {
	out := BaselineFile{Current: map[string]BenchResult{}}
	if prev, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(prev, &out); err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
	} else {
		out.Recorded = time.Now().UTC().Format("2006-01-02")
		out.Go = runtime.Version()
	}
	if out.Loadtest == nil {
		out.Loadtest = map[string]LoadtestResult{}
	}
	out.Loadtest[name] = res
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	return os.WriteFile(path, data, 0o644)
}
