// Command charles summarizes the changes between two CSV snapshots of a
// relational table — the CLI equivalent of the paper's demo GUI (steps
// 1–10): load two versions, pick a target attribute, optionally tune the
// parameters, and get ranked change summaries with tree and treemap views.
//
// Usage:
//
//	charles -source 2016.csv -target-file 2017.csv -key name -target bonus
//	        [-c 3] [-t 2] [-alpha 0.5] [-topk 10] [-cond edu,exp] [-tran bonus]
//	        [-tree] [-treemap] [-suggest]
//
// The timeline subcommand summarizes a whole snapshot *sequence* instead of
// one pair, running consecutive steps in parallel and covering every changed
// numeric attribute (or just -target when given):
//
//	charles timeline -snapshots 2015.csv,2016.csv,2017.csv -key name
//	        [-target bonus] [-c 3] [-t 2] [-alpha 0.5] [-topk 10] [-workers N]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	charles "charles"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "timeline" {
		runTimeline(os.Args[2:])
		return
	}
	var (
		sourcePath = flag.String("source", "", "source snapshot CSV (earlier version)")
		targetPath = flag.String("target-file", "", "target snapshot CSV (later version)")
		key        = flag.String("key", "", "comma-separated primary-key column(s)")
		target     = flag.String("target", "", "numeric target attribute to explain")
		condList   = flag.String("cond", "", "comma-separated condition attributes (default: setup assistant)")
		tranList   = flag.String("tran", "", "comma-separated transformation attributes (default: setup assistant)")
		c          = flag.Int("c", 3, "max condition attributes per summary")
		t          = flag.Int("t", 2, "max transformation attributes per summary")
		alpha      = flag.Float64("alpha", 0.5, "accuracy weight α in Score(S)")
		topk       = flag.Int("topk", 10, "number of summaries to return")
		kmax       = flag.Int("kmax", 4, "max residual clusters per candidate")
		seed       = flag.Int64("seed", 1, "clustering seed")
		tree       = flag.Bool("tree", false, "render the top summary as a linear model tree")
		treemap    = flag.Bool("treemap", false, "render the top summary's partition treemap")
		suggest    = flag.Bool("suggest", false, "print the setup assistant's attribute rankings and exit")
		sqlOut     = flag.Bool("sql", false, "emit the top summary as SQL UPDATE statements")
		sqlTable   = flag.String("sql-table", "snapshot", "table name used in -sql output")
		all        = flag.Bool("all", false, "summarize every changed numeric attribute (ignores -target's role as filter)")
		where      = flag.String("where", "", "restrict the analysis to rows matching this condition (e.g. \"dept = POL && grade >= 20\")")
		nonlinear  = flag.Bool("nonlinear", false, "augment transformations with ln/square/interaction features")
		diffOnly   = flag.Bool("diff", false, "print the raw cell diff and update distance, then exit")
		loose      = flag.Bool("loose", false, "tolerate inserted/deleted rows (summarize the entity intersection)")
	)
	flag.Parse()

	if *sourcePath == "" || *targetPath == "" || *key == "" || *target == "" {
		fmt.Fprintln(os.Stderr, "charles: -source, -target-file, -key and -target are required")
		flag.Usage()
		os.Exit(2)
	}
	keys := splitList(*key)
	src, err := charles.LoadCSV(*sourcePath, keys...)
	if err != nil {
		fatal(err)
	}
	tgt, err := charles.LoadCSV(*targetPath, keys...)
	if err != nil {
		fatal(err)
	}

	if *where != "" {
		src, err = charles.FilterTable(src, *where)
		if err != nil {
			fatal(err)
		}
		if err := src.SetKey(keys...); err != nil {
			fatal(err)
		}
		tgt, err = charles.FilterTable(tgt, *where)
		if err != nil {
			fatal(err)
		}
		if err := tgt.SetKey(keys...); err != nil {
			fatal(err)
		}
		fmt.Printf("restricted to %d rows matching %q\n", src.NumRows(), *where)
	}

	if *diffOnly {
		a, err := charles.Align(src, tgt)
		if err != nil {
			fatal(err)
		}
		changes, err := a.Changes(*target, 1e-9)
		if err != nil {
			fatal(err)
		}
		for _, ch := range changes {
			k, _ := a.Source.KeyOf(ch.SrcRow)
			fmt.Printf("%s: %s %v -> %v\n", k, ch.Attr, ch.Old, ch.New)
		}
		ud, err := a.UpdateDistance(1e-9)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%d changed cells of %s (update distance across all attributes: %d)\n", len(changes), *target, ud)
		return
	}

	if *suggest {
		cond, tran, err := charles.SuggestAttributes(src, tgt, *target)
		if err != nil {
			fatal(err)
		}
		fmt.Println("condition attribute candidates (by association with the change):")
		for _, s := range cond {
			fmt.Printf("  %-20s %.3f\n", s.Attr, s.Score)
		}
		fmt.Println("transformation attribute candidates (by correlation with the new value):")
		for _, s := range tran {
			fmt.Printf("  %-20s %.3f\n", s.Attr, s.Score)
		}
		return
	}

	opts := charles.DefaultOptions(*target)
	opts.C, opts.T = *c, *t
	opts.Alpha = *alpha
	opts.TopK = *topk
	opts.KMax = *kmax
	opts.Seed = *seed
	opts.CondAttrs = splitList(*condList)
	opts.TranAttrs = splitList(*tranList)
	opts.Nonlinear = *nonlinear

	if *all {
		res, err := charles.SummarizeAll(src, tgt, opts)
		if err != nil {
			fatal(err)
		}
		for _, attr := range res.Attrs {
			fmt.Printf("=== %s ===\n", attr)
			fmt.Print(charles.RenderRanked(res.ByAttr[attr][:1]))
		}
		for attr, why := range res.Skipped {
			fmt.Printf("skipped %s: %s\n", attr, why)
		}
		return
	}

	var ranked []charles.Ranked
	if *loose {
		ca, err := charles.AlignCommon(src, tgt)
		if err != nil {
			fatal(err)
		}
		if len(ca.Deleted) > 0 || len(ca.Inserted) > 0 {
			fmt.Printf("note: %d rows deleted, %d inserted; summarizing the %d common entities\n",
				len(ca.Deleted), len(ca.Inserted), ca.Source.NumRows())
		}
		ranked, err = charles.SummarizeAligned(ca.Aligned, opts)
		if err != nil {
			fatal(err)
		}
	} else {
		var err error
		ranked, err = charles.Summarize(src, tgt, opts)
		if err != nil {
			fatal(err)
		}
	}
	fmt.Print(charles.RenderRanked(ranked))
	if len(ranked) > 0 && *tree {
		fmt.Println("\nlinear model tree (top summary):")
		fmt.Print(charles.RenderTree(ranked[0].Summary))
	}
	if len(ranked) > 0 && *treemap {
		fmt.Println("\npartition treemap (top summary):")
		fmt.Print(charles.RenderTreemap(ranked[0].Summary, 50))
	}
	if len(ranked) > 0 && *sqlOut {
		fmt.Println("\nSQL replay (top summary):")
		fmt.Print(charles.ExportSQL(ranked[0].Summary, *sqlTable))
	}
}

// runTimeline implements `charles timeline`: load an ordered snapshot
// sequence and summarize every consecutive step, fanning the steps out over
// a worker pool. Without -target, every changed numeric attribute gets its
// own timeline; with it, only that attribute's is rendered.
func runTimeline(args []string) {
	fs := flag.NewFlagSet("charles timeline", flag.ExitOnError)
	var (
		snapshots = fs.String("snapshots", "", "comma-separated CSV snapshots, oldest first (at least 2)")
		key       = fs.String("key", "", "comma-separated primary-key column(s)")
		target    = fs.String("target", "", "render only this attribute's timeline (default: all changed numeric attributes)")
		condList  = fs.String("cond", "", "comma-separated condition attributes (default: setup assistant, per target)")
		tranList  = fs.String("tran", "", "comma-separated transformation attributes (default: setup assistant, per target)")
		c         = fs.Int("c", 3, "max condition attributes per summary")
		t         = fs.Int("t", 2, "max transformation attributes per summary")
		alpha     = fs.Float64("alpha", 0.5, "accuracy weight α in Score(S)")
		topk      = fs.Int("topk", 10, "number of summaries per step")
		kmax      = fs.Int("kmax", 4, "max residual clusters per candidate")
		seed      = fs.Int64("seed", 1, "clustering seed")
		workers   = fs.Int("workers", 0, "max concurrent steps (0 = GOMAXPROCS)")
	)
	_ = fs.Parse(args)
	paths := splitList(*snapshots)
	if len(paths) < 2 || *key == "" {
		fmt.Fprintln(os.Stderr, "charles timeline: -snapshots (two or more CSVs) and -key are required")
		fs.Usage()
		os.Exit(2)
	}
	keys := splitList(*key)
	snaps := make([]*charles.Table, len(paths))
	for i, p := range paths {
		s, err := charles.LoadCSV(p, keys...)
		if err != nil {
			fatal(err)
		}
		snaps[i] = s
	}
	// Target is left empty in the base: the all-attributes path discovers
	// the changed attributes itself and derives per-target options from it.
	opts := charles.DefaultOptions("")
	opts.C, opts.T = *c, *t
	opts.Alpha = *alpha
	opts.TopK = *topk
	opts.KMax = *kmax
	opts.Seed = *seed
	opts.CondAttrs = splitList(*condList)
	opts.TranAttrs = splitList(*tranList)
	opts.Workers = *workers

	if *target != "" {
		// Single-target path: only this attribute's steps run the engine.
		tl, err := charles.SummarizeTimelineTarget(snaps, *target, opts)
		if err != nil {
			fatal(err)
		}
		fmt.Print(tl.Render())
		return
	}
	mt, err := charles.SummarizeTimelineAll(snaps, opts)
	if err != nil {
		fatal(err)
	}
	fmt.Print(mt.Render())
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := parts[:0]
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p != "" {
			out = append(out, p)
		}
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "charles:", err)
	os.Exit(1)
}
