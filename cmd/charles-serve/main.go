// Command charles-serve runs the ChARLES summarization service: an
// HTTP/JSON API over a snapshot version store. Versions go in as CSV,
// ranked change summaries come out; repeated questions are answered from
// an LRU cache with singleflight deduplication.
//
// Usage:
//
//	charles-serve [-addr :8344] [-dir .charles-store] [-cache 128]
//
// Endpoints:
//
//	POST /versions            commit a CSV snapshot {csv, key, parent?, message?}
//	GET  /versions            log, commit order
//	GET  /versions/{id}       version metadata + lineage
//	GET  /versions/{id}/csv   checkout the canonical CSV
//	GET  /diff?from=&to=      update distance + changed attrs (&target= for cells)
//	POST /summarize           {from, to, target, alpha?, c?, t?, topk?}
//	GET  /stats               cache hit/miss/execution counters
//	GET  /healthz             liveness
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"

	charles "charles"
)

func main() {
	addr := flag.String("addr", ":8344", "listen address")
	dir := flag.String("dir", ".charles-store", "store directory (empty = memory only)")
	cache := flag.Int("cache", 0, "summarize result cache entries (0 = default)")
	flag.Parse()

	st, err := charles.OpenStore(*dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "charles-serve:", err)
		os.Exit(1)
	}
	where := *dir
	if where == "" {
		where = "(memory only)"
	}
	log.Printf("charles-serve: store %s, %d versions, listening on %s", where, len(st.Log()), *addr)
	srv := &http.Server{Addr: *addr, Handler: charles.NewServer(st, *cache)}
	if err := srv.ListenAndServe(); err != nil {
		fmt.Fprintln(os.Stderr, "charles-serve:", err)
		os.Exit(1)
	}
}
