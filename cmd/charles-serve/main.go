// Command charles-serve runs the ChARLES summarization service: an
// HTTP/JSON API over a snapshot version store. Versions go in as CSV,
// ranked change summaries come out; repeated questions are answered from
// an LRU cache with singleflight deduplication.
//
// Usage:
//
//	charles-serve [-addr :8344] [-dir .charles-store] [-cache 128]
//	              [-max-inflight 0] [-timeout 0] [-drain-timeout 15s]
//	              [-read-timeout 30s] [-idle-timeout 2m] [-access-log PATH]
//	charles-serve -hub .charles-hub [-default-tenant default] [-default-dataset default]
//	              [-max-open-stores 32] [-mem-budget 256MiB-in-bytes] [...]
//
// Flags are recognized in all four spellings (-dir VALUE, -dir=VALUE,
// --dir VALUE, --dir=VALUE), anywhere on the command line.
//
// With -hub the service fronts a multi-tenant store hub: every endpoint
// below also exists under /datasets/{tenant}/{dataset}/..., the legacy
// un-prefixed routes serve the -default-tenant/-default-dataset shard,
// -max-open-stores soft-caps simultaneously open shards (idle ones close
// LRU-first), and -mem-budget bounds the total bytes all shards' checkout/
// blob/change-set/result caches may hold together.
//
// Live timelines: every commit advances an incrementally maintained
// per-dataset timeline (one engine step per commit, full rebuild only on
// schema changes), so head-relative POST /timeline answers stay warm as
// data arrives, and GET /timeline/watch streams each commit's step — SSE
// without a query, one-shot long-poll with ?since=<version id>. Draining
// closes watch subscriptions promptly with a final drain event.
//
// Lifecycle: -max-inflight caps concurrently served requests (beyond it,
// requests are shed immediately with 429 + Retry-After; /healthz and
// /stats always answer), -timeout bounds each request's context (expired
// work returns 503), and SIGTERM/SIGINT triggers a graceful drain: the
// listener closes, in-flight requests get -drain-timeout to finish, then
// stragglers are cancelled and cut.
//
// Observability: GET /metrics exposes Prometheus text-format counters,
// latency histograms, and store/hub gauges ("charles_*" families; see the
// README's Operations section). -access-log appends one JSON line per
// completed request (method, route pattern, shard, status, bytes,
// duration) to the named file. /healthz, /stats, and /metrics bypass the
// -max-inflight limiter so probes and scrapers always answer.
//
// Endpoints (each also at /datasets/{tenant}/{dataset}/... in hub mode):
//
//	POST /versions            commit a CSV snapshot {csv, key, parent?, message?}
//	GET  /versions            log, commit order
//	GET  /versions/{id}       version metadata + lineage
//	GET  /versions/{id}/csv   checkout the canonical CSV
//	GET  /diff?from=&to=      update distance + changed attrs (&target= for cells)
//	POST /summarize           {from, to, target, alpha?, c?, t?, topk?}
//	POST /timeline            {head?, target?, alpha?, c?, t?, topk?}
//	GET  /timeline/watch      subscribe to commit-driven timeline steps:
//	                          SSE stream, or long-poll with ?since=<version>
//	GET  /datasets            list tenant/dataset pairs (hub mode)
//	GET  /stats               cache + store + serving counters (+ hub rollup)
//	GET  /metrics             Prometheus text exposition (limiter-exempt)
//	GET  /healthz             liveness
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	charles "charles"
	"charles/internal/cliflag"
)

func main() {
	fs := flag.NewFlagSet("charles-serve", flag.ExitOnError)
	addr := fs.String("addr", ":8344", "listen address")
	dir := fs.String("dir", ".charles-store", "store directory (empty = memory only)")
	hubDir := fs.String("hub", "", "hub root directory (multi-tenant mode; overrides -dir)")
	defTenant := fs.String("default-tenant", "", "tenant the legacy un-prefixed routes serve (hub mode)")
	defDataset := fs.String("default-dataset", "", "dataset the legacy un-prefixed routes serve (hub mode)")
	maxOpen := fs.Int("max-open-stores", 0, "soft cap on simultaneously open shards, idle ones close LRU-first (hub mode, 0 = default)")
	memBudget := fs.Int64("mem-budget", 0, "total bytes all shards' caches may hold together (hub mode, 0 = unlimited)")
	cache := fs.Int("cache", 0, "summarize result cache entries (0 = default)")
	maxInflight := fs.Int("max-inflight", 0, "max concurrently served requests; beyond it requests are shed with 429 (0 = unlimited)")
	timeout := fs.Duration("timeout", 0, "per-request deadline; expired work returns 503 (0 = none)")
	drainTimeout := fs.Duration("drain-timeout", 15*time.Second, "grace period for in-flight requests on SIGTERM before they are cancelled")
	readTimeout := fs.Duration("read-timeout", 30*time.Second, "max time to read a request (headers + body)")
	idleTimeout := fs.Duration("idle-timeout", 2*time.Minute, "max keep-alive idle time per connection")
	accessLog := fs.String("access-log", "", "append one JSON line per request to this file (empty = no request log)")
	sub, rest, err := cliflag.ParseGlobal(fs, os.Args[1:])
	if err != nil {
		fatal(err)
	}
	if sub != "" || len(rest) != 0 {
		fatal(fmt.Errorf("unexpected argument %q (charles-serve takes only flags)", sub+fmt.Sprint(rest)))
	}

	cfg := charles.ServeConfig{
		CacheSize:      *cache,
		MaxInFlight:    *maxInflight,
		RequestTimeout: *timeout,
		DefaultTenant:  *defTenant,
		DefaultDataset: *defDataset,
	}
	if *accessLog != "" {
		f, err := os.OpenFile(*accessLog, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		cfg.RequestLog = f
	}
	var handler *charles.Server
	var where string
	var versions int
	if *hubDir != "" {
		h, err := charles.OpenHubWith(*hubDir, charles.HubOptions{
			MaxOpen:      *maxOpen,
			MemoryBudget: *memBudget,
		})
		if err != nil {
			fatal(err)
		}
		refs, err := h.Datasets()
		if err != nil {
			fatal(err)
		}
		handler = charles.NewHubServer(h, cfg)
		where = fmt.Sprintf("hub %s, %d dataset(s)", *hubDir, len(refs))
	} else {
		st, err := charles.OpenStore(*dir)
		if err != nil {
			fatal(err)
		}
		handler = charles.NewServerWith(st, cfg)
		versions = len(st.Log())
		where = *dir
		if where == "" {
			where = "(memory only)"
		}
		where = fmt.Sprintf("store %s, %d versions", where, versions)
	}

	// WriteTimeout must outlast the request deadline, or the connection is
	// cut before the handler can even write its 503.
	writeTimeout := 0 * time.Second
	if *timeout > 0 {
		writeTimeout = *timeout + 10*time.Second
	}
	srv := &http.Server{
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       *readTimeout,
		WriteTimeout:      writeTimeout,
		IdleTimeout:       *idleTimeout,
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	log.Printf("charles-serve: %s, listening on %s", where, ln.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := charles.RunServer(ctx, srv, ln, *drainTimeout); err != nil {
		fatal(err)
	}
	log.Printf("charles-serve: drained cleanly")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "charles-serve:", err)
	os.Exit(1)
}
