// Command charles-serve runs the ChARLES summarization service: an
// HTTP/JSON API over a snapshot version store. Versions go in as CSV,
// ranked change summaries come out; repeated questions are answered from
// an LRU cache with singleflight deduplication.
//
// Usage:
//
//	charles-serve [-addr :8344] [-dir .charles-store] [-cache 128]
//	              [-max-inflight 0] [-timeout 0] [-drain-timeout 15s]
//	              [-read-timeout 30s] [-idle-timeout 2m]
//
// Lifecycle: -max-inflight caps concurrently served requests (beyond it,
// requests are shed immediately with 429 + Retry-After; /healthz and
// /stats always answer), -timeout bounds each request's context (expired
// work returns 503), and SIGTERM/SIGINT triggers a graceful drain: the
// listener closes, in-flight requests get -drain-timeout to finish, then
// stragglers are cancelled and cut.
//
// Endpoints:
//
//	POST /versions            commit a CSV snapshot {csv, key, parent?, message?}
//	GET  /versions            log, commit order
//	GET  /versions/{id}       version metadata + lineage
//	GET  /versions/{id}/csv   checkout the canonical CSV
//	GET  /diff?from=&to=      update distance + changed attrs (&target= for cells)
//	POST /summarize           {from, to, target, alpha?, c?, t?, topk?}
//	POST /timeline            {head?, target?, alpha?, c?, t?, topk?}
//	GET  /stats               cache + store + serving counters
//	GET  /healthz             liveness
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	charles "charles"
)

func main() {
	addr := flag.String("addr", ":8344", "listen address")
	dir := flag.String("dir", ".charles-store", "store directory (empty = memory only)")
	cache := flag.Int("cache", 0, "summarize result cache entries (0 = default)")
	maxInflight := flag.Int("max-inflight", 0, "max concurrently served requests; beyond it requests are shed with 429 (0 = unlimited)")
	timeout := flag.Duration("timeout", 0, "per-request deadline; expired work returns 503 (0 = none)")
	drainTimeout := flag.Duration("drain-timeout", 15*time.Second, "grace period for in-flight requests on SIGTERM before they are cancelled")
	readTimeout := flag.Duration("read-timeout", 30*time.Second, "max time to read a request (headers + body)")
	idleTimeout := flag.Duration("idle-timeout", 2*time.Minute, "max keep-alive idle time per connection")
	flag.Parse()

	st, err := charles.OpenStore(*dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "charles-serve:", err)
		os.Exit(1)
	}
	handler := charles.NewServerWith(st, charles.ServeConfig{
		CacheSize:      *cache,
		MaxInFlight:    *maxInflight,
		RequestTimeout: *timeout,
	})

	// WriteTimeout must outlast the request deadline, or the connection is
	// cut before the handler can even write its 503.
	writeTimeout := 0 * time.Second
	if *timeout > 0 {
		writeTimeout = *timeout + 10*time.Second
	}
	srv := &http.Server{
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       *readTimeout,
		WriteTimeout:      writeTimeout,
		IdleTimeout:       *idleTimeout,
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "charles-serve:", err)
		os.Exit(1)
	}
	where := *dir
	if where == "" {
		where = "(memory only)"
	}
	log.Printf("charles-serve: store %s, %d versions, listening on %s", where, len(st.Log()), ln.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := charles.RunServer(ctx, srv, ln, *drainTimeout); err != nil {
		fmt.Fprintln(os.Stderr, "charles-serve:", err)
		os.Exit(1)
	}
	log.Printf("charles-serve: drained cleanly")
}
