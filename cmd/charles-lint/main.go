// Command charles-lint is the multichecker for charles's project-specific
// static analyzers: it machine-enforces the store/serve invariants the repo
// otherwise keeps only by convention (the vfs write seam, typed corruption
// errors, context plumbing, key encoding, lock hygiene).
//
// Usage:
//
//	charles-lint [-list] [package-root ...]
//
// Each argument is a directory tree to analyze ("./..." and a bare "./" are
// accepted spellings of the module root). With no arguments the module
// containing the current directory is analyzed. Exit status is 1 when any
// finding survives the lint:allow directives, 2 on operational errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"

	"charles/internal/analysis"
	"charles/internal/analysis/suite"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers in the suite and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: charles-lint [-list] [package-root ...]\n\nAnalyzers:\n")
		for _, a := range suite.All() {
			fmt.Fprintf(os.Stderr, "  %-14s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()
	if *list {
		for _, a := range suite.All() {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	roots := flag.Args()
	if len(roots) == 0 {
		roots = []string{"./..."}
	}
	findings := 0
	for _, arg := range roots {
		root := strings.TrimSuffix(strings.TrimSuffix(arg, "..."), string(filepath.Separator))
		if root == "" || root == "." || root == "./" {
			root = "."
		}
		modRoot, modPath, err := moduleFor(root)
		if err != nil {
			fmt.Fprintln(os.Stderr, "charles-lint:", err)
			os.Exit(2)
		}
		// The corpus root is the requested subtree; import paths are still
		// anchored at the module so path-scoped analyzers see real paths.
		prefix := modPath
		if rel, err := filepath.Rel(modRoot, absOrDie(root)); err == nil && rel != "." {
			prefix = modPath + "/" + filepath.ToSlash(rel)
		}
		corpus, err := analysis.Load(root, prefix)
		if err != nil {
			fmt.Fprintln(os.Stderr, "charles-lint:", err)
			os.Exit(2)
		}
		diags, err := corpus.Run(suite.All())
		if err != nil {
			fmt.Fprintln(os.Stderr, "charles-lint:", err)
			os.Exit(2)
		}
		for _, d := range diags {
			fmt.Println(d)
		}
		findings += len(diags)
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "charles-lint: %d finding(s)\n", findings)
		os.Exit(1)
	}
}

var modPathRe = regexp.MustCompile(`(?m)^module\s+(\S+)`)

// moduleFor locates the enclosing go.mod of dir and returns the module
// root directory and module path.
func moduleFor(dir string) (root, path string, err error) {
	d := absOrDie(dir)
	for {
		data, rerr := os.ReadFile(filepath.Join(d, "go.mod"))
		if rerr == nil {
			m := modPathRe.FindSubmatch(data)
			if m == nil {
				return "", "", fmt.Errorf("%s/go.mod has no module directive", d)
			}
			return d, string(m[1]), nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("no go.mod found above %s", dir)
		}
		d = parent
	}
}

func absOrDie(p string) string {
	a, err := filepath.Abs(p)
	if err != nil {
		fmt.Fprintln(os.Stderr, "charles-lint:", err)
		os.Exit(2)
	}
	return a
}
