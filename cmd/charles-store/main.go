// Command charles-store manages snapshot version stores and summarizes
// changes between stored versions — the ChARLES engine bolted onto an
// OrpheusDB-style lineage.
//
// Usage:
//
//	charles-store -dir .charles commit   -csv 2016.csv -key name [-parent <id>] [-m "2016 snapshot"]
//	charles-store -dir .charles log
//	charles-store -dir .charles checkout -id <id> -out snapshot.csv
//	charles-store -dir .charles changes  -id <id>
//	charles-store -dir .charles diff      -from <id> -to <id> -target bonus
//	charles-store -dir .charles summarize -from <id> -to <id> -target bonus [-alpha 0.5] [-topk 10]
//	charles-store -dir .charles timeline  [-head <id>] [-target bonus] [-alpha 0.5] [-topk 10]
//	charles-store -dir .charles timeline  -follow [-interval 2s]
//	charles-store -dir .charles stats
//	charles-store -dir .charles gc
//	charles-store -dir .charles verify
//	charles-store -dir .charles repair
//
// Multi-tenant mode: -hub HUBDIR addresses one shard of a store hub
// instead of a standalone store; -tenant/-dataset pick the shard (both
// default to "default", so a hub opened on a fresh directory behaves like
// a single store). Every subcommand above works per-shard, plus:
//
//	charles-store -hub .charles-hub datasets              list tenant/dataset pairs
//	charles-store -hub .charles-hub -tenant acme -dataset payroll log
//	charles-store -hub .charles-hub -all-datasets verify  sweep every shard
//	charles-store -hub .charles-hub -all-datasets gc
//	charles-store -hub .charles-hub -all-datasets repair
//
// Global flags are recognized anywhere on the command line, in all four
// spellings (-dir VALUE, -dir=VALUE, --dir VALUE, --dir=VALUE).
//
// Versions are stored as delta-encoded pack files (full anchors every few
// commits); changes prints a version's decoded delta ops straight from its
// pack, and diff serves change queries from the delta ops whenever the two
// versions are delta-connected (checkout+align otherwise — same answer).
// stats reports pack counts, on-disk vs logical bytes, and the
// checkout-cache counters, and gc reclaims legacy per-version CSVs left by
// migration plus orphaned packs.
//
// timeline -follow keeps watching after the initial render: the store is
// re-opened every -interval to observe commits made by other processes, and
// each new commit advances an incrementally maintained timeline by one
// engine step (never a full re-walk), printing just the new step.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	charles "charles"
	"charles/internal/cliflag"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	fs := flag.NewFlagSet("charles-store", flag.ExitOnError)
	dir := fs.String("dir", ".charles-store", "store directory (single-store mode)")
	hubDir := fs.String("hub", "", "hub root directory (multi-tenant mode; overrides -dir)")
	tenant := fs.String("tenant", "default", "tenant to address (with -hub)")
	dataset := fs.String("dataset", "default", "dataset to address (with -hub)")
	allDatasets := fs.Bool("all-datasets", false, "with -hub: make verify/gc/repair sweep every dataset")
	sub, rest, err := cliflag.ParseGlobal(fs, os.Args[1:])
	if err != nil {
		fatal(err)
	}
	if sub == "" {
		usage()
	}
	if *hubDir != "" {
		runHub(*hubDir, *tenant, *dataset, *allDatasets, sub, rest)
		return
	}
	if sub == "datasets" || *allDatasets {
		fatal(fmt.Errorf("%s needs -hub HUBDIR", sub))
	}
	st, err := charles.OpenStore(*dir)
	if err != nil {
		fatal(err)
	}
	dispatch(st, reopener(*dir), sub, rest)
}

// reopenFunc opens a fresh view of a store directory — how timeline -follow
// observes commits made by other processes, whose manifests an already-open
// handle cannot see.
type reopenFunc func() (*charles.VersionStore, error)

func reopener(dir string) reopenFunc {
	return func() (*charles.VersionStore, error) { return charles.OpenStore(dir) }
}

// runHub executes sub against one shard of a hub — or, for datasets and
// the -all-datasets sweeps, against the hub as a whole.
func runHub(hubDir, tenant, dataset string, all bool, sub string, rest []string) {
	h, err := charles.OpenHub(hubDir)
	if err != nil {
		fatal(err)
	}
	defer h.Close()
	switch {
	case sub == "datasets":
		cmdDatasets(h)
		return
	case all && sub == "verify":
		cmdVerifyAll(h)
		return
	case all && sub == "gc":
		cmdGCAll(h)
		return
	case all && sub == "repair":
		cmdRepairAll(h)
		return
	case all:
		fatal(fmt.Errorf("-all-datasets only applies to verify, gc and repair, not %q", sub))
	}
	st, release, err := h.Acquire(tenant, dataset)
	if err != nil {
		fatal(err)
	}
	defer release()
	// Follow mode re-opens the shard's own directory (hub shards live at
	// HUBDIR/tenant/dataset) so commits from other processes are seen.
	dispatch(st, reopener(filepath.Join(hubDir, tenant, dataset)), sub, rest)
}

// dispatch runs one subcommand against one store — standalone or a hub
// shard, the commands don't care. reopen is only used by timeline -follow.
func dispatch(st *charles.VersionStore, reopen reopenFunc, sub string, rest []string) {
	switch sub {
	case "commit":
		cmdCommit(st, rest)
	case "log":
		cmdLog(st)
	case "checkout":
		cmdCheckout(st, rest)
	case "changes":
		cmdChanges(st, rest)
	case "diff":
		cmdDiff(st, rest)
	case "summarize":
		cmdSummarize(st, rest)
	case "timeline":
		cmdTimeline(st, reopen, rest)
	case "stats":
		cmdStats(st)
	case "gc":
		cmdGC(st)
	case "verify":
		cmdVerify(st)
	case "repair":
		cmdRepair(st)
	default:
		fmt.Fprintf(os.Stderr, "charles-store: unknown subcommand %q\n", sub)
		usage()
	}
}

// cmdDatasets lists every tenant/dataset pair the hub knows about — open
// shards and on-disk ones alike.
func cmdDatasets(h *charles.StoreHub) {
	refs, err := h.Datasets()
	if err != nil {
		fatal(err)
	}
	for _, ref := range refs {
		fmt.Printf("%s/%s\n", ref.Tenant, ref.Dataset)
	}
}

// sweepKeys orders a sweep's per-shard reports for stable output.
func sweepKeys[R any](reps map[string]R) []string {
	keys := make([]string, 0, len(reps))
	for k := range reps {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// cmdVerifyAll fscks every shard of the hub and exits 1 when any fails,
// so scripts and CI can gate on a fully clean hub.
func cmdVerifyAll(h *charles.StoreHub) {
	reps, err := h.VerifyAll()
	bad := 0
	for _, key := range sweepKeys(reps) {
		rep := reps[key]
		fmt.Printf("%s: verified %d/%d version(s)\n", key, rep.Verified, rep.Versions)
		for _, s := range rep.StrayFiles {
			fmt.Printf("%s: stray %s\n", key, s)
		}
		for _, iss := range rep.Issues {
			fmt.Fprintf(os.Stderr, "%s: corrupt %s: %s\n", key, iss.Version, iss.Problem)
			bad++
		}
	}
	if err != nil {
		fatal(err)
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "charles-store: %d version(s) failed verification; run repair to quarantine them\n", bad)
		os.Exit(1)
	}
}

// cmdGCAll reclaims legacy CSVs, orphaned packs and stale temp files in
// every shard.
func cmdGCAll(h *charles.StoreHub) {
	reps, err := h.GCAll()
	for _, key := range sweepKeys(reps) {
		rep := reps[key]
		fmt.Printf("%s: removed %d legacy CSV file(s), %d orphaned pack(s), %d stale temp file(s); reclaimed %d bytes\n",
			key, rep.LegacyFiles, rep.OrphanPacks, rep.TempFiles, rep.BytesReclaimed)
	}
	if err != nil {
		fatal(err)
	}
}

// cmdRepairAll quarantines unverifiable data in every shard. Quarantine
// directories stay inside their own shard — a sweep never moves files
// across shards.
func cmdRepairAll(h *charles.StoreHub) {
	reps, err := h.RepairAll()
	for _, key := range sweepKeys(reps) {
		rep := reps[key]
		if len(rep.Dropped) == 0 && len(rep.Quarantined) == 0 {
			fmt.Printf("%s: healthy\n", key)
			continue
		}
		fmt.Printf("%s: dropped %d version(s), quarantined %d file(s) into %s\n",
			key, len(rep.Dropped), len(rep.Quarantined), rep.QuarantineDir)
	}
	if err != nil {
		fatal(err)
	}
}

func cmdCommit(st *charles.VersionStore, args []string) {
	fs := flag.NewFlagSet("commit", flag.ExitOnError)
	csvPath := fs.String("csv", "", "snapshot CSV to commit")
	key := fs.String("key", "", "comma-separated primary-key column(s)")
	parent := fs.String("parent", "", "parent version id (empty for a root)")
	msg := fs.String("m", "", "commit message")
	mustParse(fs, args)
	if *csvPath == "" || *key == "" {
		fatal(fmt.Errorf("commit needs -csv and -key"))
	}
	t, err := charles.LoadCSV(*csvPath, splitList(*key)...)
	if err != nil {
		fatal(err)
	}
	v, err := st.Commit(t, *parent, *msg)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("committed %s (%d rows, %d cols, seq %d)\n", v.ID, v.Rows, v.Cols, v.Seq)
}

func cmdLog(st *charles.VersionStore) {
	for _, v := range st.Log() {
		parent := v.Parent
		if parent == "" {
			parent = "-"
		}
		fmt.Printf("%s  seq=%-3d parent=%-12s rows=%-7d %s\n", v.ID, v.Seq, parent, v.Rows, v.Message)
	}
}

func cmdCheckout(st *charles.VersionStore, args []string) {
	fs := flag.NewFlagSet("checkout", flag.ExitOnError)
	id := fs.String("id", "", "version id")
	out := fs.String("out", "", "output CSV path")
	mustParse(fs, args)
	if *id == "" || *out == "" {
		fatal(fmt.Errorf("checkout needs -id and -out"))
	}
	t, err := st.Checkout(*id)
	if err != nil {
		fatal(err)
	}
	if err := charles.SaveCSV(*out, t); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s (%d rows)\n", *out, t.NumRows())
}

// cmdChanges prints a version's decoded delta ops straight from its pack —
// no snapshot reconstruction, no alignment.
func cmdChanges(st *charles.VersionStore, args []string) {
	fs := flag.NewFlagSet("changes", flag.ExitOnError)
	id := fs.String("id", "", "version id")
	mustParse(fs, args)
	if *id == "" {
		fatal(fmt.Errorf("changes needs -id"))
	}
	cs, err := st.Changes(*id)
	if err != nil {
		fatal(err)
	}
	if cs.Materialized {
		fmt.Printf("%s is materialized (full snapshot): no delta ops; use diff against its parent\n", cs.Version)
		return
	}
	fmt.Printf("%s vs parent %s:\n", cs.Version, cs.Base)
	for _, k := range cs.Removed {
		fmt.Printf("  - %s\n", k)
	}
	for _, ins := range cs.Inserted {
		fmt.Printf("  + %s  %s\n", ins.Key, strings.Join(ins.Cells, ","))
	}
	for _, p := range cs.Patched {
		fmt.Printf("  ~ %s ", p.Key)
		for i, ci := range p.Cols {
			if ci < 0 || ci >= len(cs.Columns) {
				// Same verdict the serve endpoint gives: an op pointing
				// beyond the header is corruption, not data.
				fatal(fmt.Errorf("version %s: patch column %d beyond header (corrupt store)", cs.Version, ci))
			}
			fmt.Printf(" %s=%q", cs.Columns[ci], p.Vals[i])
		}
		fmt.Println()
	}
	fmt.Printf("%d removed, %d inserted, %d patched\n", len(cs.Removed), len(cs.Inserted), len(cs.Patched))
}

func cmdDiff(st *charles.VersionStore, args []string) {
	fs := flag.NewFlagSet("diff", flag.ExitOnError)
	from := fs.String("from", "", "source version id")
	to := fs.String("to", "", "target version id")
	target := fs.String("target", "", "attribute to diff (empty = all)")
	mustParse(fs, args)
	if *from == "" || *to == "" {
		fatal(fmt.Errorf("diff needs -from and -to"))
	}
	res, native, err := st.DiffResult(*from, *to, 1e-9)
	if err != nil {
		fatal(err)
	}
	path := "checkout+align"
	if native {
		path = "delta-native"
	}
	if *target != "" {
		if !res.HasColumn(*target) {
			fatal(fmt.Errorf("no column %q", *target))
		}
		changes := res.ChangesFor(*target)
		for _, ch := range changes {
			fmt.Printf("%s: %s %v -> %v\n", ch.Key, ch.Attr, ch.Old, ch.New)
		}
		fmt.Printf("%d changed cells of %s (%s)\n", len(changes), *target, path)
		return
	}
	if len(res.Removed) > 0 {
		fmt.Printf("removed entities: %v\n", res.Removed)
	}
	if len(res.Inserted) > 0 {
		fmt.Printf("inserted entities: %v\n", res.Inserted)
	}
	fmt.Printf("update distance: %d cell modifications across %v (%s)\n", res.UpdateDistance, res.ChangedAttrs, path)
}

func cmdSummarize(st *charles.VersionStore, args []string) {
	fs := flag.NewFlagSet("summarize", flag.ExitOnError)
	from := fs.String("from", "", "source version id")
	to := fs.String("to", "", "target version id")
	target := fs.String("target", "", "numeric attribute to explain")
	alpha := fs.Float64("alpha", 0.5, "accuracy weight α")
	topk := fs.Int("topk", 10, "summaries to return")
	tree := fs.Bool("tree", false, "render the top summary as a tree")
	mustParse(fs, args)
	if *from == "" || *to == "" || *target == "" {
		fatal(fmt.Errorf("summarize needs -from, -to and -target"))
	}
	opts := charles.DefaultOptions(*target)
	opts.Alpha = *alpha
	opts.TopK = *topk
	ranked, err := st.Summarize(*from, *to, opts)
	if err != nil {
		fatal(err)
	}
	fmt.Print(charles.RenderRanked(ranked))
	if *tree && len(ranked) > 0 {
		fmt.Print(charles.RenderTree(ranked[0].Summary))
	}
}

// cmdTimeline walks the lineage root→head through the store's cached
// checkout path and renders each changed numeric attribute's timeline. With
// -follow it then keeps watching: the store is re-opened every -interval,
// and each new commit extends an incrementally maintained timeline by one
// engine step, printing just that step.
func cmdTimeline(st *charles.VersionStore, reopen reopenFunc, args []string) {
	fs := flag.NewFlagSet("timeline", flag.ExitOnError)
	head := fs.String("head", "", "head version id (default: latest commit)")
	target := fs.String("target", "", "render only this attribute's timeline")
	alpha := fs.Float64("alpha", 0.5, "accuracy weight α")
	topk := fs.Int("topk", 10, "summaries per step")
	follow := fs.Bool("follow", false, "keep watching for new commits and render each new step")
	interval := fs.Duration("interval", 2*time.Second, "poll interval with -follow")
	mustParse(fs, args)
	if *follow {
		if *head != "" || *target != "" {
			fatal(fmt.Errorf("timeline -follow tracks the latest head across all attributes; drop -head/-target"))
		}
		base := charles.DefaultOptions("")
		base.Alpha = *alpha
		base.TopK = *topk
		followTimeline(reopen, base, *interval)
		return
	}
	id := *head
	if id == "" {
		hv, err := st.Head()
		if err != nil {
			fatal(err)
		}
		id = hv.ID
	}
	chain, err := st.Chain(id)
	if err != nil {
		fatal(err)
	}
	if len(chain) < 2 {
		fatal(fmt.Errorf("timeline needs a lineage of at least 2 versions, head %s has %d", id, len(chain)))
	}
	ids := make([]string, len(chain))
	for i, v := range chain {
		ids[i] = v.ID
	}
	base := charles.DefaultOptions("")
	base.Alpha = *alpha
	base.TopK = *topk
	if *target != "" {
		// Single-target: check the chain out (cache-served) and run only
		// that attribute's engine passes, with up-front target validation.
		snaps := make([]*charles.Table, len(ids))
		for i, vid := range ids {
			var err error
			if snaps[i], err = st.Checkout(vid); err != nil {
				fatal(err)
			}
		}
		tl, err := charles.SummarizeTimelineTarget(snaps, *target, base)
		if err != nil {
			fatal(err)
		}
		fmt.Print(tl.Render())
		return
	}
	mt, err := charles.SummarizeTimelineChain(st, ids, base)
	if err != nil {
		fatal(err)
	}
	fmt.Print(mt.Render())
}

// followTimeline tails a store's lineage forever: render the timeline as it
// stands, then poll for new commits and advance a TimelineMaintainer one
// engine step per commit — never re-walking the chain — printing each new
// step as it lands. Runs until interrupted.
func followTimeline(reopen reopenFunc, base charles.Options, interval time.Duration) {
	var m *charles.TimelineMaintainer
	last := ""
	for first := true; ; first = false {
		if !first {
			time.Sleep(interval)
		}
		st, err := reopen()
		if err != nil {
			fmt.Fprintln(os.Stderr, "charles-store: follow:", err)
			continue
		}
		m, last = followOnce(st, m, last, base, first)
		st.Close()
	}
}

// followOnce advances the maintained timeline to st's current head and
// returns the maintainer and head id for the next poll.
func followOnce(st *charles.VersionStore, m *charles.TimelineMaintainer, last string, base charles.Options, first bool) (*charles.TimelineMaintainer, string) {
	hv, err := st.Head()
	if err != nil {
		if first {
			fmt.Println("waiting for the first commit...")
		}
		return m, last
	}
	if hv.ID == last {
		return m, last
	}
	chain, err := st.Chain(hv.ID)
	if err != nil {
		fmt.Fprintln(os.Stderr, "charles-store: follow:", err)
		return m, last
	}
	ids := make([]string, len(chain))
	for i, v := range chain {
		ids[i] = v.ID
	}
	from := -1
	if m != nil {
		for i, id := range ids {
			if id == m.Head() {
				from = i
			}
		}
	}
	if m == nil || from == -1 {
		// First sight of this lineage (or a branch switch): build from
		// scratch and render everything summarized so far.
		return followRebuild(st, ids, base), hv.ID
	}
	for _, id := range ids[from+1:] {
		if err := m.ExtendFromSource(st, id); err != nil {
			// The one-step extension cannot apply (typically a schema
			// change); fall back to a full rebuild of the new chain.
			fmt.Printf("[%s] incremental step unavailable (%v); rebuilding\n", id, err)
			return followRebuild(st, ids, base), hv.ID
		}
		renderNewStep(m, id)
	}
	return m, hv.ID
}

// followRebuild seeds a fresh maintainer over the full chain and renders its
// timeline; a chain still too short to summarize returns nil and waits.
func followRebuild(st *charles.VersionStore, ids []string, base charles.Options) *charles.TimelineMaintainer {
	if len(ids) < 2 {
		fmt.Printf("head %s: waiting for a second version to summarize\n", ids[len(ids)-1])
		return nil
	}
	snaps, err := charles.MaterializeVersions(st, ids)
	if err != nil {
		fmt.Fprintln(os.Stderr, "charles-store: follow:", err)
		return nil
	}
	m, err := charles.NewTimelineMaintainer(snaps, ids, base)
	if err != nil {
		fmt.Fprintln(os.Stderr, "charles-store: follow:", err)
		return nil
	}
	fmt.Print(m.Timeline().Render())
	return m
}

// renderNewStep prints the newest maintained step: one block per attribute
// with its top summary's CTs, plus the drift note when the step's policy
// moved against the previous one.
func renderNewStep(m *charles.TimelineMaintainer, id string) {
	mt := m.Timeline()
	fmt.Printf("\n[%s] step %d\n", id, mt.Steps)
	for _, attr := range mt.Attrs {
		tl := mt.Timelines[attr]
		s := tl.Steps[len(tl.Steps)-1]
		switch {
		case s.NoChange:
			fmt.Printf("  %s: (no change)\n", attr)
		case len(s.Ranked) == 0:
			fmt.Printf("  %s: (no summary recovered)\n", attr)
		default:
			top := s.Ranked[0]
			fmt.Printf("  %s: score %.1f%%\n", attr, top.Breakdown.Score*100)
			for _, ct := range top.Summary.CTs {
				fmt.Printf("    %s\n", ct)
			}
			for _, d := range tl.Drifts() {
				if d.StepB == len(tl.Steps)-1 {
					fmt.Printf("    drift vs step %d: %s\n", d.StepA, d.Note)
				}
			}
		}
	}
}

// cmdStats prints the pack-storage and checkout-cache counters.
func cmdStats(st *charles.VersionStore) {
	s := st.Stats()
	fmt.Printf("versions:      %d\n", s.Versions)
	fmt.Printf("packs:         %d full + %d delta\n", s.FullPacks, s.DeltaPacks)
	fmt.Printf("pack bytes:    %d\n", s.PackBytes)
	fmt.Printf("logical bytes: %d\n", s.LogicalBytes)
	if s.PackBytes > 0 {
		fmt.Printf("compression:   %.2fx\n", s.Compression)
	}
	fmt.Printf("checkout cache: %d/%d entries, %d hits, %d misses, %d parses\n",
		s.CacheEntries, s.CacheCapacity, s.CacheHits, s.CacheMisses, s.Parses)
}

// cmdGC reclaims migrated legacy CSVs and orphaned pack files.
func cmdGC(st *charles.VersionStore) {
	rep, err := st.GC()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("removed %d legacy CSV file(s), %d orphaned pack(s) and %d stale temp file(s), reclaimed %d bytes\n",
		rep.LegacyFiles, rep.OrphanPacks, rep.TempFiles, rep.BytesReclaimed)
}

// cmdVerify runs the fsck-style store walk and exits 1 when anything fails
// verification, so scripts (and CI) can gate on a clean store.
func cmdVerify(st *charles.VersionStore) {
	rep, err := st.Verify()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("verified %d/%d version(s)\n", rep.Verified, rep.Versions)
	for _, s := range rep.StrayFiles {
		fmt.Printf("stray: %s (unreferenced; gc reclaims, repair quarantines)\n", s)
	}
	if rep.Clean() {
		return
	}
	for _, iss := range rep.Issues {
		fmt.Fprintf(os.Stderr, "corrupt: %s: %s\n", iss.Version, iss.Problem)
	}
	fmt.Fprintf(os.Stderr, "charles-store: %d version(s) failed verification; run repair to quarantine them\n", len(rep.Issues))
	os.Exit(1)
}

// cmdRepair drops unverifiable versions (and their dependents) from the
// manifest and moves their packs — plus any strays — into quarantine/.
func cmdRepair(st *charles.VersionStore) {
	rep, err := st.Repair()
	if err != nil {
		fatal(err)
	}
	for _, id := range rep.Dropped {
		fmt.Printf("dropped %s\n", id)
	}
	for _, f := range rep.Quarantined {
		fmt.Printf("quarantined %s\n", f)
	}
	if len(rep.Dropped) == 0 && len(rep.Quarantined) == 0 {
		fmt.Println("store is healthy; nothing to repair")
		return
	}
	fmt.Printf("dropped %d version(s), quarantined %d file(s) into %s\n",
		len(rep.Dropped), len(rep.Quarantined), rep.QuarantineDir)
}

func splitList(s string) []string {
	var out []string
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ',' {
			if i > start {
				out = append(out, s[start:i])
			}
			start = i + 1
		}
	}
	return out
}

func mustParse(fs *flag.FlagSet, args []string) {
	if err := fs.Parse(args); err != nil {
		fatal(err)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: charles-store [-dir DIR | -hub HUBDIR [-tenant T] [-dataset D]] SUBCOMMAND [flags]
  subcommands: commit log checkout changes diff summarize timeline stats gc verify repair
  hub only:    datasets; -all-datasets makes verify/gc/repair sweep every shard`)
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "charles-store:", err)
	os.Exit(1)
}
