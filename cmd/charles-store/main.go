// Command charles-store manages a snapshot version store and summarizes
// changes between stored versions — the ChARLES engine bolted onto an
// OrpheusDB-style lineage.
//
// Usage:
//
//	charles-store -dir .charles commit   -csv 2016.csv -key name [-parent <id>] [-m "2016 snapshot"]
//	charles-store -dir .charles log
//	charles-store -dir .charles checkout -id <id> -out snapshot.csv
//	charles-store -dir .charles changes  -id <id>
//	charles-store -dir .charles diff      -from <id> -to <id> -target bonus
//	charles-store -dir .charles summarize -from <id> -to <id> -target bonus [-alpha 0.5] [-topk 10]
//	charles-store -dir .charles timeline  [-head <id>] [-target bonus] [-alpha 0.5] [-topk 10]
//	charles-store -dir .charles stats
//	charles-store -dir .charles gc
//	charles-store -dir .charles verify
//	charles-store -dir .charles repair
//
// Versions are stored as delta-encoded pack files (full anchors every few
// commits); changes prints a version's decoded delta ops straight from its
// pack, and diff serves change queries from the delta ops whenever the two
// versions are delta-connected (checkout+align otherwise — same answer).
// stats reports pack counts, on-disk vs logical bytes, and the
// checkout-cache counters, and gc reclaims legacy per-version CSVs left by
// migration plus orphaned packs.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	charles "charles"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	// Global flags may precede the subcommand.
	fs := flag.NewFlagSet("charles-store", flag.ExitOnError)
	dir := fs.String("dir", ".charles-store", "store directory")
	// Find the subcommand: first non-flag argument. The global -dir flag is
	// accepted in both spellings (-dir VALUE and -dir=VALUE, with one or two
	// dashes) and may appear before or after the subcommand.
	args := os.Args[1:]
	var sub string
	var rest []string
	for i := 0; i < len(args); i++ {
		name := strings.TrimPrefix(strings.TrimPrefix(args[i], "-"), "-")
		switch {
		case strings.HasPrefix(args[i], "-") && name == "dir" && i+1 < len(args):
			if err := fs.Parse(args[i : i+2]); err != nil {
				fatal(err)
			}
			i++
		case strings.HasPrefix(args[i], "-") && strings.HasPrefix(name, "dir="):
			if err := fs.Parse(args[i : i+1]); err != nil {
				fatal(err)
			}
		case sub == "":
			sub = args[i]
		default:
			rest = append(rest, args[i])
		}
	}
	if sub == "" {
		usage()
	}
	st, err := charles.OpenStore(*dir)
	if err != nil {
		fatal(err)
	}
	switch sub {
	case "commit":
		cmdCommit(st, rest)
	case "log":
		cmdLog(st)
	case "checkout":
		cmdCheckout(st, rest)
	case "changes":
		cmdChanges(st, rest)
	case "diff":
		cmdDiff(st, rest)
	case "summarize":
		cmdSummarize(st, rest)
	case "timeline":
		cmdTimeline(st, rest)
	case "stats":
		cmdStats(st)
	case "gc":
		cmdGC(st)
	case "verify":
		cmdVerify(st)
	case "repair":
		cmdRepair(st)
	default:
		fmt.Fprintf(os.Stderr, "charles-store: unknown subcommand %q\n", sub)
		usage()
	}
}

func cmdCommit(st *charles.VersionStore, args []string) {
	fs := flag.NewFlagSet("commit", flag.ExitOnError)
	csvPath := fs.String("csv", "", "snapshot CSV to commit")
	key := fs.String("key", "", "comma-separated primary-key column(s)")
	parent := fs.String("parent", "", "parent version id (empty for a root)")
	msg := fs.String("m", "", "commit message")
	mustParse(fs, args)
	if *csvPath == "" || *key == "" {
		fatal(fmt.Errorf("commit needs -csv and -key"))
	}
	t, err := charles.LoadCSV(*csvPath, splitList(*key)...)
	if err != nil {
		fatal(err)
	}
	v, err := st.Commit(t, *parent, *msg)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("committed %s (%d rows, %d cols, seq %d)\n", v.ID, v.Rows, v.Cols, v.Seq)
}

func cmdLog(st *charles.VersionStore) {
	for _, v := range st.Log() {
		parent := v.Parent
		if parent == "" {
			parent = "-"
		}
		fmt.Printf("%s  seq=%-3d parent=%-12s rows=%-7d %s\n", v.ID, v.Seq, parent, v.Rows, v.Message)
	}
}

func cmdCheckout(st *charles.VersionStore, args []string) {
	fs := flag.NewFlagSet("checkout", flag.ExitOnError)
	id := fs.String("id", "", "version id")
	out := fs.String("out", "", "output CSV path")
	mustParse(fs, args)
	if *id == "" || *out == "" {
		fatal(fmt.Errorf("checkout needs -id and -out"))
	}
	t, err := st.Checkout(*id)
	if err != nil {
		fatal(err)
	}
	if err := charles.SaveCSV(*out, t); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s (%d rows)\n", *out, t.NumRows())
}

// cmdChanges prints a version's decoded delta ops straight from its pack —
// no snapshot reconstruction, no alignment.
func cmdChanges(st *charles.VersionStore, args []string) {
	fs := flag.NewFlagSet("changes", flag.ExitOnError)
	id := fs.String("id", "", "version id")
	mustParse(fs, args)
	if *id == "" {
		fatal(fmt.Errorf("changes needs -id"))
	}
	cs, err := st.Changes(*id)
	if err != nil {
		fatal(err)
	}
	if cs.Materialized {
		fmt.Printf("%s is materialized (full snapshot): no delta ops; use diff against its parent\n", cs.Version)
		return
	}
	fmt.Printf("%s vs parent %s:\n", cs.Version, cs.Base)
	for _, k := range cs.Removed {
		fmt.Printf("  - %s\n", k)
	}
	for _, ins := range cs.Inserted {
		fmt.Printf("  + %s  %s\n", ins.Key, strings.Join(ins.Cells, ","))
	}
	for _, p := range cs.Patched {
		fmt.Printf("  ~ %s ", p.Key)
		for i, ci := range p.Cols {
			if ci < 0 || ci >= len(cs.Columns) {
				// Same verdict the serve endpoint gives: an op pointing
				// beyond the header is corruption, not data.
				fatal(fmt.Errorf("version %s: patch column %d beyond header (corrupt store)", cs.Version, ci))
			}
			fmt.Printf(" %s=%q", cs.Columns[ci], p.Vals[i])
		}
		fmt.Println()
	}
	fmt.Printf("%d removed, %d inserted, %d patched\n", len(cs.Removed), len(cs.Inserted), len(cs.Patched))
}

func cmdDiff(st *charles.VersionStore, args []string) {
	fs := flag.NewFlagSet("diff", flag.ExitOnError)
	from := fs.String("from", "", "source version id")
	to := fs.String("to", "", "target version id")
	target := fs.String("target", "", "attribute to diff (empty = all)")
	mustParse(fs, args)
	if *from == "" || *to == "" {
		fatal(fmt.Errorf("diff needs -from and -to"))
	}
	res, native, err := st.DiffResult(*from, *to, 1e-9)
	if err != nil {
		fatal(err)
	}
	path := "checkout+align"
	if native {
		path = "delta-native"
	}
	if *target != "" {
		if !res.HasColumn(*target) {
			fatal(fmt.Errorf("no column %q", *target))
		}
		changes := res.ChangesFor(*target)
		for _, ch := range changes {
			fmt.Printf("%s: %s %v -> %v\n", ch.Key, ch.Attr, ch.Old, ch.New)
		}
		fmt.Printf("%d changed cells of %s (%s)\n", len(changes), *target, path)
		return
	}
	if len(res.Removed) > 0 {
		fmt.Printf("removed entities: %v\n", res.Removed)
	}
	if len(res.Inserted) > 0 {
		fmt.Printf("inserted entities: %v\n", res.Inserted)
	}
	fmt.Printf("update distance: %d cell modifications across %v (%s)\n", res.UpdateDistance, res.ChangedAttrs, path)
}

func cmdSummarize(st *charles.VersionStore, args []string) {
	fs := flag.NewFlagSet("summarize", flag.ExitOnError)
	from := fs.String("from", "", "source version id")
	to := fs.String("to", "", "target version id")
	target := fs.String("target", "", "numeric attribute to explain")
	alpha := fs.Float64("alpha", 0.5, "accuracy weight α")
	topk := fs.Int("topk", 10, "summaries to return")
	tree := fs.Bool("tree", false, "render the top summary as a tree")
	mustParse(fs, args)
	if *from == "" || *to == "" || *target == "" {
		fatal(fmt.Errorf("summarize needs -from, -to and -target"))
	}
	opts := charles.DefaultOptions(*target)
	opts.Alpha = *alpha
	opts.TopK = *topk
	ranked, err := st.Summarize(*from, *to, opts)
	if err != nil {
		fatal(err)
	}
	fmt.Print(charles.RenderRanked(ranked))
	if *tree && len(ranked) > 0 {
		fmt.Print(charles.RenderTree(ranked[0].Summary))
	}
}

// cmdTimeline walks the lineage root→head through the store's cached
// checkout path and renders each changed numeric attribute's timeline.
func cmdTimeline(st *charles.VersionStore, args []string) {
	fs := flag.NewFlagSet("timeline", flag.ExitOnError)
	head := fs.String("head", "", "head version id (default: latest commit)")
	target := fs.String("target", "", "render only this attribute's timeline")
	alpha := fs.Float64("alpha", 0.5, "accuracy weight α")
	topk := fs.Int("topk", 10, "summaries per step")
	mustParse(fs, args)
	id := *head
	if id == "" {
		hv, err := st.Head()
		if err != nil {
			fatal(err)
		}
		id = hv.ID
	}
	chain, err := st.Chain(id)
	if err != nil {
		fatal(err)
	}
	if len(chain) < 2 {
		fatal(fmt.Errorf("timeline needs a lineage of at least 2 versions, head %s has %d", id, len(chain)))
	}
	ids := make([]string, len(chain))
	for i, v := range chain {
		ids[i] = v.ID
	}
	base := charles.DefaultOptions("")
	base.Alpha = *alpha
	base.TopK = *topk
	if *target != "" {
		// Single-target: check the chain out (cache-served) and run only
		// that attribute's engine passes, with up-front target validation.
		snaps := make([]*charles.Table, len(ids))
		for i, vid := range ids {
			var err error
			if snaps[i], err = st.Checkout(vid); err != nil {
				fatal(err)
			}
		}
		tl, err := charles.SummarizeTimelineTarget(snaps, *target, base)
		if err != nil {
			fatal(err)
		}
		fmt.Print(tl.Render())
		return
	}
	mt, err := charles.SummarizeTimelineChain(st, ids, base)
	if err != nil {
		fatal(err)
	}
	fmt.Print(mt.Render())
}

// cmdStats prints the pack-storage and checkout-cache counters.
func cmdStats(st *charles.VersionStore) {
	s := st.Stats()
	fmt.Printf("versions:      %d\n", s.Versions)
	fmt.Printf("packs:         %d full + %d delta\n", s.FullPacks, s.DeltaPacks)
	fmt.Printf("pack bytes:    %d\n", s.PackBytes)
	fmt.Printf("logical bytes: %d\n", s.LogicalBytes)
	if s.PackBytes > 0 {
		fmt.Printf("compression:   %.2fx\n", s.Compression)
	}
	fmt.Printf("checkout cache: %d/%d entries, %d hits, %d misses, %d parses\n",
		s.CacheEntries, s.CacheCapacity, s.CacheHits, s.CacheMisses, s.Parses)
}

// cmdGC reclaims migrated legacy CSVs and orphaned pack files.
func cmdGC(st *charles.VersionStore) {
	rep, err := st.GC()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("removed %d legacy CSV file(s), %d orphaned pack(s) and %d stale temp file(s), reclaimed %d bytes\n",
		rep.LegacyFiles, rep.OrphanPacks, rep.TempFiles, rep.BytesReclaimed)
}

// cmdVerify runs the fsck-style store walk and exits 1 when anything fails
// verification, so scripts (and CI) can gate on a clean store.
func cmdVerify(st *charles.VersionStore) {
	rep, err := st.Verify()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("verified %d/%d version(s)\n", rep.Verified, rep.Versions)
	for _, s := range rep.StrayFiles {
		fmt.Printf("stray: %s (unreferenced; gc reclaims, repair quarantines)\n", s)
	}
	if rep.Clean() {
		return
	}
	for _, iss := range rep.Issues {
		fmt.Fprintf(os.Stderr, "corrupt: %s: %s\n", iss.Version, iss.Problem)
	}
	fmt.Fprintf(os.Stderr, "charles-store: %d version(s) failed verification; run repair to quarantine them\n", len(rep.Issues))
	os.Exit(1)
}

// cmdRepair drops unverifiable versions (and their dependents) from the
// manifest and moves their packs — plus any strays — into quarantine/.
func cmdRepair(st *charles.VersionStore) {
	rep, err := st.Repair()
	if err != nil {
		fatal(err)
	}
	for _, id := range rep.Dropped {
		fmt.Printf("dropped %s\n", id)
	}
	for _, f := range rep.Quarantined {
		fmt.Printf("quarantined %s\n", f)
	}
	if len(rep.Dropped) == 0 && len(rep.Quarantined) == 0 {
		fmt.Println("store is healthy; nothing to repair")
		return
	}
	fmt.Printf("dropped %d version(s), quarantined %d file(s) into %s\n",
		len(rep.Dropped), len(rep.Quarantined), rep.QuarantineDir)
}

func splitList(s string) []string {
	var out []string
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ',' {
			if i > start {
				out = append(out, s[start:i])
			}
			start = i + 1
		}
	}
	return out
}

func mustParse(fs *flag.FlagSet, args []string) {
	if err := fs.Parse(args); err != nil {
		fatal(err)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: charles-store [-dir DIR] {commit|log|checkout|changes|diff|summarize|timeline|stats|gc|verify|repair} [flags]")
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "charles-store:", err)
	os.Exit(1)
}
