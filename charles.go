// Package charles is a Go implementation of ChARLES — Change-Aware Recovery
// of Latent Evolution Semantics in Relational Data (He, Meliou, Fariha;
// SIGMOD 2025).
//
// Given two snapshots of a relational table with identical schema and
// entities, and a numeric target attribute, ChARLES produces a ranked list
// of change summaries. Each summary is a set of conditional transformations
// (CTs): a predicate identifying a data partition, paired with a linear
// model describing how the target evolved there, e.g.
//
//	edu = PhD  →  new_bonus = 1.05×bonus + 1000
//
// Summaries are scored by Score(S) = α·Accuracy + (1−α)·Interpretability and
// can be rendered as linear model trees or partition treemaps.
//
// Typical usage:
//
//	src, _ := charles.LoadCSV("salaries_2016.csv", "name")
//	tgt, _ := charles.LoadCSV("salaries_2017.csv", "name")
//	opts := charles.DefaultOptions("bonus")
//	ranked, _ := charles.Summarize(src, tgt, opts)
//	fmt.Println(charles.RenderTree(ranked[0].Summary))
package charles

import (
	"charles/internal/assist"
	"charles/internal/core"
	"charles/internal/diff"
	"charles/internal/history"
	"charles/internal/model"
	"charles/internal/score"
	"charles/internal/table"
)

// Re-exported core types. They are defined in internal packages and aliased
// here so the public surface is a single import.
type (
	// Table is an in-memory columnar relational table.
	Table = table.Table
	// Schema describes a table's ordered, typed columns.
	Schema = table.Schema
	// Field is one column of a schema.
	Field = table.Field
	// Value is a dynamically typed cell value.
	Value = table.Value
	// Type tags column/value types.
	Type = table.Type

	// Options configure a Summarize run.
	Options = core.Options
	// Ranked pairs a summary with its evaluated score.
	Ranked = core.Ranked
	// Summary is a set of conditional transformations for one target.
	Summary = model.Summary
	// CT is one conditional transformation.
	CT = model.CT
	// Transformation is the linear-model half of a CT.
	Transformation = model.Transformation
	// Breakdown is a fully evaluated score with all components.
	Breakdown = score.Breakdown
	// Weights tune the interpretability sub-scores.
	Weights = score.Weights
	// Suggestion is one ranked candidate attribute from the setup assistant.
	Suggestion = assist.Suggestion
	// Aligned is a key-matched snapshot pair.
	Aligned = diff.Aligned
	// Change is one modified cell.
	Change = diff.Change
)

// Column type tags.
const (
	Float  = table.Float
	Int    = table.Int
	String = table.String
	Bool   = table.Bool
)

// Value constructors.
var (
	// F builds a float Value.
	F = table.F
	// I builds an int Value.
	I = table.I
	// S builds a string Value.
	S = table.S
	// B builds a bool Value.
	B = table.B
)

// NewTable creates an empty table with the given schema.
func NewTable(schema Schema) (*Table, error) { return table.New(schema) }

// DefaultOptions returns the engine defaults used in the paper's demo:
// c = 3, t = 2, α = 0.5, top-10 summaries.
func DefaultOptions(target string) Options { return core.DefaultOptions(target) }

// DefaultWeights weights all interpretability components equally.
func DefaultWeights() Weights { return score.DefaultWeights() }

// Summarize runs the full ChARLES pipeline — align, enumerate attribute
// subsets, discover partitions, fit and snap transformations, score and
// rank — and returns the top summaries for opts.Target.
func Summarize(src, tgt *Table, opts Options) ([]Ranked, error) {
	return core.Summarize(src, tgt, opts)
}

// Align validates and key-matches a snapshot pair without summarizing;
// useful for inspecting raw changes or running several targets.
func Align(src, tgt *Table) (*Aligned, error) { return diff.Align(src, tgt) }

// CommonAlignment is a tolerant alignment over the entity intersection,
// with inserted/deleted rows reported instead of rejected.
type CommonAlignment = diff.CommonAlignment

// AlignCommon relaxes the paper's no-insert/no-delete assumption: snapshots
// are matched on their common entities, and rows present in only one side
// are reported. Feed the embedded Aligned to SummarizeAligned to explain
// the evolution of the surviving entities.
func AlignCommon(src, tgt *Table) (*CommonAlignment, error) {
	return diff.AlignCommon(src, tgt)
}

// SummarizeAligned is Summarize over a pre-aligned pair.
func SummarizeAligned(a *Aligned, opts Options) ([]Ranked, error) {
	return core.SummarizeAligned(a, opts)
}

// Evaluate scores one summary against the actual evolved target values
// (aligned to source row order) — the row-at-a-time reference path. The
// engine itself scores candidates through score.Evaluator, a reusable
// vectorized equivalent that produces identical breakdowns; this entry
// point exists for callers scoring externally supplied summaries and for
// differential testing.
func Evaluate(s *Summary, src *Table, actual []float64, changed []bool, alpha float64, w Weights) (*Breakdown, error) {
	return score.Evaluate(s, src, actual, changed, alpha, w)
}

// SuggestAttributes runs the setup assistant: it ranks candidate condition
// attributes (by association with the observed change) and transformation
// attributes (numeric, by correlation with the new target value).
func SuggestAttributes(src, tgt *Table, target string) (cond, tran []Suggestion, err error) {
	a, err := diff.Align(src, tgt)
	if err != nil {
		return nil, nil, err
	}
	cond, err = assist.SuggestCondition(a, target, 1e-9)
	if err != nil {
		return nil, nil, err
	}
	tran, err = assist.SuggestTransformation(a, target, 1e-9)
	if err != nil {
		return nil, nil, err
	}
	return cond, tran, nil
}

// Changes lists every modified cell of the target attribute between the
// snapshots (the raw diff the summaries compress).
func Changes(src, tgt *Table, target string) ([]Change, error) {
	a, err := diff.Align(src, tgt)
	if err != nil {
		return nil, err
	}
	return a.Changes(target, 1e-9)
}

// MultiResult holds the per-attribute output of SummarizeAll.
type MultiResult = core.MultiResult

// SummarizeAll summarizes every changed numeric attribute between the
// snapshots in one call; base supplies the shared parameters (α, c, t, …)
// and its Target field is ignored. Changed categorical attributes are
// reported as skipped.
func SummarizeAll(src, tgt *Table, base Options) (*MultiResult, error) {
	return core.SummarizeAll(src, tgt, base)
}

// ExportSQL renders a summary as ANSI-SQL UPDATE statements replaying the
// recovered evolution against a table named tableName.
func ExportSQL(s *Summary, tableName string) string {
	return s.SQL(tableName)
}

// Timeline is the summarized evolution of one attribute across a snapshot
// sequence (see SummarizeTimeline).
type Timeline = history.Timeline

// TimelineStep is one summarized consecutive pair of a timeline.
type TimelineStep = history.Step

// Drift describes how a recovered policy moved between consecutive steps.
type Drift = history.Drift

// MultiTimeline is the batch form of Timeline: one timeline per changed
// numeric attribute across the whole snapshot sequence.
type MultiTimeline = history.MultiTimeline

// SummarizeTimeline extends ChARLES from a snapshot pair to a snapshot
// sequence D₁…Dₙ: each consecutive step is summarized and the timeline can
// report policy drift between steps.
func SummarizeTimeline(snapshots []*Table, opts Options) (*Timeline, error) {
	return history.Summarize(snapshots, opts)
}

// SummarizeTimelineAll summarizes an entire snapshot chain across all
// changed numeric attributes: steps run concurrently on a pool bounded by
// base.Workers, each consecutive pair is aligned exactly once, and all
// targets of a pair share one PairContext. base.Target is ignored; the other
// fields supply the shared parameters, exactly as in SummarizeAll.
func SummarizeTimelineAll(snapshots []*Table, base Options) (*MultiTimeline, error) {
	return history.SummarizeAll(snapshots, base)
}

// SummarizeTimelineTarget summarizes a single attribute across the chain on
// the same bounded step pool, skipping the engine on steps where the target
// did not move — the cheap path when only one attribute matters.
func SummarizeTimelineTarget(snapshots []*Table, target string, base Options) (*Timeline, error) {
	return history.SummarizeTarget(snapshots, target, base)
}

// PairContext carries the target-independent derived state of one aligned
// snapshot pair (compiled atom bitmaps, split index) so that multiple
// Summarize runs over the same pair — different targets, repeated queries —
// share it instead of rebuilding it per run. Safe for concurrent use.
type PairContext = core.PairContext

// NewPairContext builds the shared acceleration structures for an aligned
// pair; an explicit condition pool narrows the split index to those
// attributes (default: every non-key column). Run targets through
// PairContext.Summarize; results are bit-identical to
// Summarize/SummarizeAligned with the same options.
func NewPairContext(a *Aligned, condAttrs ...string) (*PairContext, error) {
	return core.NewPairContext(a, condAttrs...)
}
