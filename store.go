package charles

import (
	"charles/internal/predicate"
	"charles/internal/store"
)

// VersionStore is a bolt-on lineage of table snapshots (OrpheusDB-style):
// commit versions, walk history, and summarize the change between any two
// of them. See OpenStore.
type VersionStore = store.Store

// Version describes one committed snapshot in a VersionStore.
type Version = store.Version

// OpenStore opens (or creates) a snapshot version store. With a non-empty
// directory versions persist across processes; with "" the store is
// memory-only.
func OpenStore(dir string) (*VersionStore, error) { return store.Open(dir) }

// Predicate is a conjunctive condition over table attributes — the
// condition half of a CT, also usable standalone for filtering.
type Predicate = predicate.Predicate

// ParseCondition parses a textual condition ("edu = PhD && exp >= 3")
// against a table's schema into a Predicate. The grammar matches what the
// engine itself prints: conjunctions of =, !=, <, >=, and in(...) atoms.
func ParseCondition(input string, schema *Table) (Predicate, error) {
	return predicate.Parse(input, schema)
}

// FilterTable returns the rows of t matching a textual condition.
func FilterTable(t *Table, condition string) (*Table, error) {
	p, err := predicate.Parse(condition, t)
	if err != nil {
		return nil, err
	}
	mask, err := p.Mask(t)
	if err != nil {
		return nil, err
	}
	return t.Filter(mask)
}
