package charles

import (
	"charles/internal/diff"
	"charles/internal/history"
	"charles/internal/predicate"
	"charles/internal/store"
)

// VersionStore is a bolt-on lineage of table snapshots (OrpheusDB-style):
// commit versions, walk history, and summarize the change between any two
// of them. Versions persist as delta-encoded pack files with periodic full
// anchors, and checkouts are served through a table LRU. See OpenStore.
type VersionStore = store.Store

// Version describes one committed snapshot in a VersionStore.
type Version = store.Version

// StoreOptions tune a version store's anchor interval and checkout cache.
type StoreOptions = store.Options

// StoreStats reports a store's pack storage and checkout-cache counters.
type StoreStats = store.Stats

// GCReport summarizes what VersionStore.GC reclaimed.
type GCReport = store.GCReport

// VerifyReport is the result of VersionStore.Verify — an fsck-style walk
// that reconstructs every version from disk, re-hashes it against its
// content id, and re-parses it, bypassing all caches.
type VerifyReport = store.VerifyReport

// VerifyIssue is one problem Verify found with one version.
type VerifyIssue = store.VerifyIssue

// RepairReport summarizes what VersionStore.Repair changed: the versions
// dropped from the manifest and the files moved into quarantine/.
type RepairReport = store.RepairReport

// ErrCorruptStore is reported (wrapped, naming the version) when stored
// data is missing, unreadable, or inconsistent with the manifest.
var ErrCorruptStore = store.ErrCorruptStore

// OpenStore opens (or creates) a snapshot version store. With a non-empty
// directory versions persist across processes; with "" the store is
// memory-only. Legacy one-CSV-per-version directories are migrated to the
// pack layout on open.
func OpenStore(dir string) (*VersionStore, error) { return store.Open(dir) }

// OpenStoreWith is OpenStore with explicit anchor-interval / cache tuning.
func OpenStoreWith(dir string, opts StoreOptions) (*VersionStore, error) {
	return store.OpenWith(dir, opts)
}

// ChangeSet is one version's decoded delta ops — removed keys, inserted
// rows, cell patches against its parent — served straight from the store's
// delta packs by VersionStore.Changes. Versions stored as full snapshots
// (anchors, roots) report Materialized=true instead of ops.
type ChangeSet = store.ChangeSet

// DiffResult is the answer to a change query between two snapshots: removed
// and inserted entity keys plus every modified cell of the common entities.
// VersionStore.DiffResult assembles it straight from delta packs when the
// two versions are delta-connected, and from a checkout+align pass
// otherwise — bit-identically.
type DiffResult = diff.Result

// KeyedChange is one modified cell of a DiffResult, addressed by entity key.
type KeyedChange = diff.KeyedChange

// DiffSnapshots answers a change query between two in-memory snapshots the
// align-based way (the reference semantics of VersionStore.DiffResult):
// removed/inserted keys plus modified cells at the given absolute tolerance.
func DiffSnapshots(src, tgt *Table, tol float64) (*DiffResult, error) {
	return diff.ResultFromPair(src, tgt, tol)
}

// SummarizeTimelineChain walks the stored version ids in order and
// summarizes every changed numeric attribute of every consecutive pair.
// Cold walks are delta-native — one checkout at the chain root, then
// step-by-step application of each version's ChangeSet — and warm walks are
// served from the store's table cache without parsing.
func SummarizeTimelineChain(src *VersionStore, ids []string, base Options) (*MultiTimeline, error) {
	return history.SummarizeChain(src, ids, base)
}

// MaterializeVersions materializes the given version ids in order,
// delta-natively where possible (see SummarizeTimelineChain); the returned
// tables are identical to per-id checkouts.
func MaterializeVersions(src *VersionStore, ids []string) ([]*Table, error) {
	return history.MaterializeChain(src, ids)
}

// TimelineMaintainer incrementally maintains a MultiTimeline over a growing
// version chain: seed it once over the chain so far, then advance it by
// exactly one engine step per new commit (ExtendFromSource) instead of
// re-walking the whole lineage — the "query answering under updates"
// discipline. Its timeline is bit-identical to SummarizeTimelineChain over
// the same ids.
type TimelineMaintainer = history.TimelineMaintainer

// NewTimelineMaintainer seeds a maintainer over a materialized chain: the
// snapshots and their version ids, root→head, at least 2 of each.
func NewTimelineMaintainer(snaps []*Table, ids []string, base Options) (*TimelineMaintainer, error) {
	return history.NewTimelineMaintainer(snaps, ids, base)
}

// CommitNote is one commit notification delivered on a VersionStore
// subscription (see VersionStore.Subscribe): the Version just committed.
type CommitNote = store.CommitNote

// StoreSubscription is a live feed of one store's commits. Delivery is
// non-blocking: a subscriber that falls behind has its oldest pending notes
// dropped (counted by Dropped) rather than stalling committers.
type StoreSubscription = store.Subscription

// HubCommitNote is one commit notification from a StoreHub subscription,
// naming the shard it happened in.
type HubCommitNote = store.HubCommitNote

// HubSubscription is a live feed of every shard's commits, fanned in by the
// hub; see StoreHub.Subscribe.
type HubSubscription = store.HubSubscription

// Predicate is a conjunctive condition over table attributes — the
// condition half of a CT, also usable standalone for filtering.
type Predicate = predicate.Predicate

// ParseCondition parses a textual condition ("edu = PhD && exp >= 3")
// against a table's schema into a Predicate. The grammar matches what the
// engine itself prints: conjunctions of =, !=, <, >=, and in(...) atoms.
func ParseCondition(input string, schema *Table) (Predicate, error) {
	return predicate.Parse(input, schema)
}

// FilterTable returns the rows of t matching a textual condition.
func FilterTable(t *Table, condition string) (*Table, error) {
	p, err := predicate.Parse(condition, t)
	if err != nil {
		return nil, err
	}
	mask, err := p.Mask(t)
	if err != nil {
		return nil, err
	}
	return t.Filter(mask)
}

// StoreHub is a multi-tenant namespace of version stores: every
// tenant/dataset pair addresses an independent pack store (a shard) under
// one root directory. Shards open lazily, idle ones are closed LRU-first
// past the MaxOpen soft cap, and all shards' checkout/blob/change-set/
// diff-result caches charge one shared MemoryBudget. Commits to different
// shards never block each other.
type StoreHub = store.Hub

// HubOptions tune a hub: the open-shard soft cap, the shared cache byte
// budget, and the per-shard store options.
type HubOptions = store.HubOptions

// HubStats is a hub-wide stats rollup: open shards, budget accounting, and
// one ShardStats per open shard.
type HubStats = store.HubStats

// ShardStats is one shard's slice of HubStats: its address, pin count,
// hub-level commit/read counters, and the underlying store's stats.
type ShardStats = store.ShardStats

// DatasetRef addresses one shard of a hub.
type DatasetRef = store.DatasetRef

// MemoryBudget is a shared byte budget with one global recency order
// across every cache charging it; see NewMemoryBudget.
type MemoryBudget = store.Budget

// BudgetStats snapshots a MemoryBudget's accounting.
type BudgetStats = store.BudgetStats

// NewMemoryBudget makes a budget of capBytes (nil — unlimited — when
// capBytes <= 0). StoreOptions.Budget accepts it directly; OpenHub wires
// one from HubOptions.MemoryBudget.
func NewMemoryBudget(capBytes int64) *MemoryBudget { return store.NewBudget(capBytes) }

// ErrStoreClosed is returned by every operation on a store after Close —
// including operations on a hub shard whose store was evicted.
var ErrStoreClosed = store.ErrStoreClosed

// ErrHubClosed is returned by every operation on a hub after Close.
var ErrHubClosed = store.ErrHubClosed

// ErrUnknownDataset is returned (wrapped, naming the shard) when a read
// addresses a tenant/dataset that was never committed to.
var ErrUnknownDataset = store.ErrUnknownDataset

// ErrInvalidName rejects tenant/dataset names that could escape the hub
// directory or collide with the store's own files.
var ErrInvalidName = store.ErrInvalidName

// OpenHub opens (or creates) a multi-tenant store hub rooted at dir. With
// dir "" every shard is memory-only (they still share the budget).
func OpenHub(dir string) (*StoreHub, error) { return store.OpenHub(dir) }

// OpenHubWith is OpenHub with explicit tuning.
func OpenHubWith(dir string, opts HubOptions) (*StoreHub, error) {
	return store.OpenHubWith(dir, opts)
}
