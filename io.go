package charles

import (
	"io"

	"charles/internal/csvio"
)

// LoadCSV reads a CSV file into a table with automatic type inference
// (currency and percent decorations are handled) and declares the given
// primary-key columns.
func LoadCSV(path string, key ...string) (*Table, error) {
	return csvio.ReadFile(path, csvio.Options{Key: key})
}

// ReadCSV is LoadCSV over an io.Reader.
func ReadCSV(r io.Reader, key ...string) (*Table, error) {
	return csvio.Read(r, csvio.Options{Key: key})
}

// SaveCSV writes a table to a CSV file with a header row.
func SaveCSV(path string, t *Table) error {
	return csvio.WriteFile(path, t)
}

// WriteCSV writes a table to w as CSV.
func WriteCSV(w io.Writer, t *Table) error {
	return csvio.Write(w, t)
}
