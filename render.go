package charles

import (
	"strings"

	"charles/internal/lmtree"
	"charles/internal/viz"
)

// RenderTree draws a summary as an ASCII linear model tree (the paper's
// Figure 2): conditions at internal nodes, transformations at leaves, with
// a final "(no change)" leaf for the uncovered partition.
func RenderTree(s *Summary) string {
	return lmtree.FromSummary(s).Render()
}

// RenderTreemap draws the partition treemap of demo step 10: one bar per
// CT, width proportional to data coverage, hatched for no-change
// partitions, annotated with condition, transformation, and accuracy.
func RenderTreemap(s *Summary, width int) string {
	return viz.Treemap(s, width)
}

// RenderRanked renders a ranked summary list as the demo's step-8 result
// panel: per summary, the blended score with its accuracy and
// interpretability components, then one line per CT.
func RenderRanked(items []Ranked) string {
	var b strings.Builder
	for i, it := range items {
		b.WriteString(viz.SummaryCard(i+1, it.Summary, it.Breakdown))
	}
	return b.String()
}
