package charles

import (
	"charles/internal/serve"
	"charles/internal/store"
)

// Server is the ChARLES summarization service: an HTTP/JSON API over a
// VersionStore with an LRU result cache and singleflight deduplication in
// front of Summarize. See cmd/charles-serve for the standalone binary and
// the endpoint list.
type Server = serve.Server

// ServerStats snapshots the service's result-cache counters.
type ServerStats = serve.Stats

// NewServer wraps a version store in an http.Handler. cacheSize bounds the
// summarize result cache (<=0 uses the default). The store may be shared
// with other goroutines — it is safe for concurrent use.
func NewServer(st *VersionStore, cacheSize int) *Server {
	return serve.NewServer(st, cacheSize)
}

// ErrLineageConflict is returned by VersionStore.Commit when content
// addressing dedups to an existing version whose parent differs from the
// requested one.
var ErrLineageConflict = store.ErrLineageConflict
