package charles

import (
	"context"
	"net"
	"net/http"
	"time"

	"charles/internal/serve"
	"charles/internal/store"
)

// Server is the ChARLES summarization service: an HTTP/JSON API over a
// VersionStore with an LRU result cache and singleflight deduplication in
// front of Summarize. Commits drive an incrementally maintained per-dataset
// timeline (one engine step per commit), keeping head-relative POST
// /timeline answers warm and feeding GET /timeline/watch subscriptions.
// See cmd/charles-serve for the standalone binary and the endpoint list.
type Server = serve.Server

// ServerStats snapshots the service's result-cache counters.
type ServerStats = serve.Stats

// ServeConfig tunes the serving lifecycle: result-cache size, the
// concurrency cap behind 429 load shedding, the per-request deadline, and
// the structured request-log sink. The zero value is the historical
// behavior (default cache, unlimited concurrency, no deadline, no log).
type ServeConfig = serve.Config

// ServingStats snapshots the lifecycle counters: concurrency cap, requests
// in flight, requests shed with 429, and the per-shard request/status
// breakdown. The same counters back the server's GET /metrics endpoint,
// which renders them in the Prometheus text exposition format.
type ServingStats = serve.ServingStats

// ShardServingStats is one shard's serve-layer request counters: total
// requests (shed and failed-resolve included), shed count, and per
// status-class totals.
type ShardServingStats = serve.ShardServingStats

// NewServer wraps a version store in an http.Handler. cacheSize bounds the
// summarize result cache (<=0 uses the default). The store may be shared
// with other goroutines — it is safe for concurrent use.
func NewServer(st *VersionStore, cacheSize int) *Server {
	return serve.NewServer(st, cacheSize)
}

// NewServerWith is NewServer with the full serving lifecycle config.
func NewServerWith(st *VersionStore, cfg ServeConfig) *Server {
	return serve.NewServerWith(st, cfg)
}

// RunServer runs srv on ln until ctx is cancelled, then drains gracefully:
// in-flight requests get drainTimeout to finish before being cancelled and
// cut. A drained shutdown returns nil (http.ErrServerClosed is the clean
// path, not an error).
func RunServer(ctx context.Context, srv *http.Server, ln net.Listener, drainTimeout time.Duration) error {
	return serve.Serve(ctx, srv, ln, drainTimeout)
}

// ErrLineageConflict is returned by VersionStore.Commit when content
// addressing dedups to an existing version whose parent differs from the
// requested one.
var ErrLineageConflict = store.ErrLineageConflict

// NewHubServer wraps a multi-tenant StoreHub in an http.Handler: every
// endpoint exists under /datasets/{tenant}/{dataset}/... and the legacy
// un-prefixed routes serve the default dataset. GET /stats rolls up
// per-shard store and serving counters plus the shared budget.
func NewHubServer(h *StoreHub, cfg ServeConfig) *Server {
	return serve.NewHubServer(h, cfg)
}
